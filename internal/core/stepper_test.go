package core

import (
	"math"
	"testing"

	"rumor/internal/graph"
	"rumor/internal/xrand"
)

func TestSyncStepperMatchesRunSync(t *testing.T) {
	g := mustGraph(graph.Hypercube(6))
	full, err := RunSync(g, 0, SyncConfig{Protocol: PushPull}, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	stepper, err := NewSyncStepper(g, 0, SyncConfig{Protocol: PushPull}, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	for stepper.Step() {
	}
	res := stepper.Result()
	if res.Rounds != full.Rounds || res.NumInformed != full.NumInformed {
		t.Fatalf("stepper result differs: %d/%d vs %d/%d",
			res.Rounds, res.NumInformed, full.Rounds, full.NumInformed)
	}
	for v := range res.InformedAt {
		if res.InformedAt[v] != full.InformedAt[v] {
			t.Fatalf("node %d informed at %d vs %d", v, res.InformedAt[v], full.InformedAt[v])
		}
	}
}

func TestSyncStepperMonotoneProgress(t *testing.T) {
	g := mustGraph(graph.Complete(64))
	stepper, err := NewSyncStepper(g, 0, SyncConfig{Protocol: PushPull}, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	prev := stepper.NumInformed()
	if prev != 1 {
		t.Fatalf("initial informed count %d", prev)
	}
	rounds := 0
	for stepper.Step() {
		rounds++
		cur := stepper.NumInformed()
		if cur < prev {
			t.Fatal("informed count decreased")
		}
		if stepper.Round() != rounds {
			t.Fatalf("Round() = %d, want %d", stepper.Round(), rounds)
		}
		prev = cur
	}
	if !stepper.Finished() {
		t.Fatal("stepper not finished after Step returned false")
	}
	if stepper.Step() {
		t.Fatal("Step after finish executed a round")
	}
	if !stepper.Informed(63) {
		t.Fatal("node 63 not informed at completion on K_64")
	}
}

func TestSyncStepperEarlyStop(t *testing.T) {
	// Stop externally at 50% coverage: the stepper supports interleaving.
	g := mustGraph(graph.Complete(100))
	stepper, err := NewSyncStepper(g, 0, SyncConfig{Protocol: PushPull}, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for stepper.NumInformed() < 50 && stepper.Step() {
	}
	if stepper.NumInformed() < 50 {
		t.Fatal("never reached 50% on K_100")
	}
	res := stepper.Result()
	if res.Complete {
		t.Fatal("snapshot claims complete at partial coverage")
	}
}

func TestAsyncStepperMatchesRunAsync(t *testing.T) {
	g := mustGraph(graph.Hypercube(5))
	full, err := RunAsync(g, 0, AsyncConfig{Protocol: PushPull}, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	stepper, err := NewAsyncStepper(g, 0, AsyncConfig{Protocol: PushPull}, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for stepper.Step() {
	}
	res := stepper.Result()
	if res.Time != full.Time || res.Steps != full.Steps {
		t.Fatalf("async stepper differs: %v/%d vs %v/%d", res.Time, res.Steps, full.Time, full.Steps)
	}
}

func TestAsyncStepperTimeIncreases(t *testing.T) {
	g := mustGraph(graph.Complete(32))
	stepper, err := NewAsyncStepper(g, 0, AsyncConfig{Protocol: PushPull}, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for stepper.Step() {
		if stepper.Time() <= prev {
			t.Fatal("time did not advance")
		}
		prev = stepper.Time()
	}
	if stepper.NumInformed() != 32 {
		t.Fatalf("only %d informed at completion", stepper.NumInformed())
	}
}

func TestCurveFromSyncResult(t *testing.T) {
	g := mustGraph(graph.Complete(100))
	res, err := RunSync(g, 0, SyncConfig{Protocol: PushPull}, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	c := res.Curve()
	if len(c.Times) == 0 {
		t.Fatal("empty curve")
	}
	if c.Times[0] != 0 || c.Fractions[0] != 0.01 {
		t.Fatalf("curve start (%v, %v), want (0, 0.01)", c.Times[0], c.Fractions[0])
	}
	last := c.Fractions[len(c.Fractions)-1]
	if last != 1.0 {
		t.Fatalf("curve end fraction %v", last)
	}
	// Monotone in both coordinates.
	for i := 1; i < len(c.Times); i++ {
		if c.Times[i] <= c.Times[i-1] || c.Fractions[i] <= c.Fractions[i-1] {
			t.Fatal("curve not strictly increasing")
		}
	}
}

func TestCurveFractionAt(t *testing.T) {
	c := &Curve{Times: []float64{0, 1, 3}, Fractions: []float64{0.1, 0.5, 1}}
	cases := []struct{ t, want float64 }{
		{-1, 0}, {0, 0.1}, {0.5, 0.1}, {1, 0.5}, {2.9, 0.5}, {3, 1}, {99, 1},
	}
	for _, tc := range cases {
		if got := c.FractionAt(tc.t); got != tc.want {
			t.Errorf("FractionAt(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestCurveFromAsyncResult(t *testing.T) {
	g := mustGraph(graph.Complete(64))
	res, err := RunAsync(g, 0, AsyncConfig{Protocol: PushPull}, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	c := res.Curve()
	if got := c.FractionAt(res.Time); math.Abs(got-1) > 1e-12 {
		t.Fatalf("fraction at completion = %v", got)
	}
	if got := c.FractionAt(0); math.Abs(got-1.0/64) > 1e-12 {
		t.Fatalf("fraction at 0 = %v, want 1/64", got)
	}
	// Consistency with CoverageTime: FractionAt(CoverageTime(f)) >= f.
	for _, f := range []float64{0.25, 0.5, 0.75} {
		ct := res.CoverageTime(f)
		if got := c.FractionAt(ct); got < f {
			t.Fatalf("FractionAt(CoverageTime(%v)) = %v < %v", f, got, f)
		}
	}
}

func TestCurveEmpty(t *testing.T) {
	c := buildCurve(nil, 10)
	if len(c.Times) != 0 || c.FractionAt(5) != 0 {
		t.Fatal("empty curve not degenerate")
	}
}

func TestSyncStepperWithCrashesFinishes(t *testing.T) {
	g := mustGraph(graph.Path(6))
	stepper, err := NewSyncStepper(g, 0, SyncConfig{
		Protocol: PushPull,
		Crashes:  []Crash{{Node: 3, Time: 0}},
	}, xrand.New(6))
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for stepper.Step() {
		steps++
		if steps > 1000 {
			t.Fatal("stepper did not halt despite isolation")
		}
	}
	if stepper.NumInformed() > 3 {
		t.Fatalf("rumor crossed crashed node: %d informed", stepper.NumInformed())
	}
}
