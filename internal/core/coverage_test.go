package core

import (
	"testing"

	"rumor/internal/graph"
	"rumor/internal/xrand"
)

// The batch helpers must agree exactly with the single-fraction queries
// (they share one sorted copy instead of sorting per query).
func TestCoverageTimesMatchesSingleQueries(t *testing.T) {
	g := mustGraph(graph.Hypercube(6))
	res, err := RunAsync(g, 0, AsyncConfig{Protocol: PushPull}, xrand.New(8))
	if err != nil {
		t.Fatal(err)
	}
	fracs := []float64{0, 0.25, 0.5, 0.9, 0.99, 1.0}
	batch := res.CoverageTimes(fracs)
	if len(batch) != len(fracs) {
		t.Fatalf("batch length %d, want %d", len(batch), len(fracs))
	}
	for i, f := range fracs {
		if single := res.CoverageTime(f); single != batch[i] {
			t.Errorf("frac %v: batch %v != single %v", f, batch[i], single)
		}
	}
	for i := 1; i < len(batch); i++ {
		if batch[i] < batch[i-1] {
			t.Errorf("coverage times not monotone: %v", batch)
		}
	}
}

func TestCoverageRoundsMatchesSingleQueries(t *testing.T) {
	g := mustGraph(graph.Hypercube(6))
	res, err := RunSync(g, 0, SyncConfig{Protocol: PushPull}, xrand.New(8))
	if err != nil {
		t.Fatal(err)
	}
	fracs := []float64{0, 0.25, 0.5, 0.9, 0.99, 1.0}
	batch := res.CoverageRounds(fracs)
	for i, f := range fracs {
		if single := res.CoverageRound(f); single != batch[i] {
			t.Errorf("frac %v: batch %v != single %v", f, batch[i], single)
		}
	}
}

// Unreachable coverage reports -1 in batch queries too.
func TestCoverageBatchUnreached(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	g := b.MustBuild()
	sres, err := RunSync(g, 0, SyncConfig{Protocol: PushPull}, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	rounds := sres.CoverageRounds([]float64{0.5, 0.9})
	if rounds[0] == -1 || rounds[1] != -1 {
		t.Errorf("rounds = %v, want [reached, -1]", rounds)
	}
	ares, err := RunAsync(g, 0, AsyncConfig{Protocol: PushPull}, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	times := ares.CoverageTimes([]float64{0.5, 0.9})
	if times[0] < 0 || times[1] != -1 {
		t.Errorf("times = %v, want [reached, -1]", times)
	}
}
