package core

import (
	"testing"

	"rumor/internal/graph"
	"rumor/internal/xrand"
)

// Benchmarks report node-updates/sec — a node update is one simulated
// contact decision (one batched draw consumed), the unit BENCH_3 tracks.

func benchSync(b *testing.B, g *graph.Graph, cfg SyncConfig) {
	root := xrand.New(1)
	s, err := NewSyncStepper(g, 0, cfg, root.Child(0))
	if err != nil {
		b.Fatal(err)
	}
	var updates int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reset(root.Child(uint64(i)))
		for s.Step() {
		}
		updates += s.Updates()
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(updates)/secs, "updates/sec")
	}
}

func benchAsync(b *testing.B, g *graph.Graph, cfg AsyncConfig) {
	root := xrand.New(1)
	s, err := NewAsyncStepper(g, 0, cfg, root.Child(0))
	if err != nil {
		b.Fatal(err)
	}
	var steps int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reset(root.Child(uint64(i)))
		for s.Step() {
		}
		steps += s.Steps()
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(steps)/secs, "updates/sec")
	}
}

func BenchmarkSyncPushPullHypercube14(b *testing.B) {
	benchSync(b, mustGraph(graph.Hypercube(14)), SyncConfig{Protocol: PushPull})
}

func BenchmarkSyncPushComplete4096(b *testing.B) {
	benchSync(b, mustGraph(graph.Complete(4096)), SyncConfig{Protocol: Push})
}

func BenchmarkSyncPushPullGNP(b *testing.B) {
	g, err := graph.GNPConnected(1<<13, 0.002, xrand.New(9), 50)
	if err != nil {
		b.Fatal(err)
	}
	benchSync(b, g, SyncConfig{Protocol: PushPull})
}

func BenchmarkAsyncGlobalHypercube14(b *testing.B) {
	benchAsync(b, mustGraph(graph.Hypercube(14)), AsyncConfig{Protocol: PushPull})
}

func BenchmarkAsyncPerEdgeHypercube14(b *testing.B) {
	benchAsync(b, mustGraph(graph.Hypercube(14)), AsyncConfig{Protocol: PushPull, View: PerEdgeClocks})
}

func BenchmarkReferenceSyncHypercube10(b *testing.B) {
	g := mustGraph(graph.Hypercube(10))
	var updates int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := RunSyncReference(g, 0, SyncConfig{Protocol: PushPull}, xrand.New(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		updates += r.Updates
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(updates)/secs, "updates/sec")
	}
}
