package core

import (
	"os"
	"testing"
	"time"

	"rumor/internal/graph"
	"rumor/internal/xrand"
)

// TestLargeNSyncCell builds a 10^7-node G(n,p) graph with the streamed
// CSR builder and runs one synchronous push-pull cell end to end. Gated
// behind RUMOR_LARGE_N=1 (takes tens of seconds and ~2GB); the BENCH_3
// suite runs the same shape via `cmd/experiments -bench -bench-large`.
func TestLargeNSyncCell(t *testing.T) {
	if os.Getenv("RUMOR_LARGE_N") == "" {
		t.Skip("set RUMOR_LARGE_N=1 to run the 10^7-node cell")
	}
	const n = 10_000_000
	p := 20.0 / n // mean degree 20 > log n: connected whp
	start := time.Now()
	g, err := graph.GNP(n, p, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	buildDur := time.Since(start)
	t.Logf("built %v: n=%d m=%d in %v", g, g.NumNodes(), g.NumEdges(), buildDur)

	start = time.Now()
	res, err := RunSync(g, 0, SyncConfig{Protocol: PushPull}, xrand.New(42))
	if err != nil {
		t.Fatal(err)
	}
	runDur := time.Since(start)
	t.Logf("sync push-pull: rounds=%d informed=%d/%d updates=%d in %v (%.0f updates/sec)",
		res.Rounds, res.NumInformed, n, res.Updates, runDur,
		float64(res.Updates)/runDur.Seconds())
	if res.NumInformed < n/2 {
		t.Fatalf("spread stalled: %d of %d informed", res.NumInformed, n)
	}
}
