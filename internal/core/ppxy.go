package core

import (
	"fmt"
	"math"

	"rumor/internal/graph"
	"rumor/internal/xrand"
)

// PPVariant selects one of the paper's auxiliary synchronous processes.
type PPVariant int

// Auxiliary processes from the upper-bound analysis (Section 4).
const (
	// PPX is the process of Definition 5: an uninformed node with k
	// informed neighbors pulls with probability 1 - e^{-2k/deg(v)} if
	// k < deg(v)/2, and with probability 1 otherwise.
	PPX PPVariant = iota + 1
	// PPY is the process of Definition 7: the pull probability is
	// 1 - e^{-2k/deg(v)} always (no k >= deg(v)/2 override).
	PPY
)

// String returns the paper's name for the process.
func (v PPVariant) String() string {
	switch v {
	case PPX:
		return "ppx"
	case PPY:
		return "ppy"
	default:
		return fmt.Sprintf("PPVariant(%d)", int(v))
	}
}

// RunPPVariant executes ppx or ppy from src. These processes are not
// realistic rumor spreading algorithms — a node must know which of its
// neighbors are informed — but they are the bridge between pp and pp-a in
// the paper's upper-bound proof (Lemmas 6 and 9), and simulating them lets
// us check those lemmas empirically:
//
//	T(ppx) ≼ T(pp)                        (Lemma 6)
//	Tδ(ppy) ≤ 2·Tδ/2(ppx) + O(log(n/δ))   (Lemma 9)
//	Tδ(pp-a) ≤ 4·Tδ/2(ppy) + O(log(n/δ))  (Lemma 10)
//
// Push behaviour and round semantics are identical to RunSync.
func RunPPVariant(g *graph.Graph, src graph.NodeID, variant PPVariant, cfg SyncConfig, rng *xrand.RNG) (*SyncResult, error) {
	if variant != PPX && variant != PPY {
		return nil, fmt.Errorf("%w: variant %d", ErrBadProtocol, int(variant))
	}
	if cfg.Protocol != 0 && cfg.Protocol != PushPull {
		return nil, fmt.Errorf("%w: %v is defined for push-pull only", ErrBadProtocol, variant)
	}
	if len(cfg.Churn) > 0 {
		return nil, fmt.Errorf("%w: %v does not support churn", ErrBadChurn, variant)
	}
	prob, err := validateCommon(g, src, PushPull, cfg.TransmitProb)
	if err != nil {
		return nil, err
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = defaultMaxRounds(g.NumNodes())
	}
	n := g.NumNodes()
	st := newSpreadState(g, src)
	informedAt := make([]int32, n)
	for i := range informedAt {
		informedAt[i] = -1
	}
	informedAt[src] = 0
	if cfg.Observer != nil {
		cfg.Observer.OnInformed(0, src, -1)
	}

	type pending struct{ v, from graph.NodeID }
	var newly []pending

	round := 0
	var updates int64
	for !st.done() {
		if round >= maxRounds {
			res := &SyncResult{
				Rounds:      round,
				InformedAt:  informedAt,
				Parent:      st.parent,
				NumInformed: st.num,
				Complete:    st.num == n,
				Updates:     updates,
			}
			return res, fmt.Errorf("%w: %d rounds (%v on %v)", ErrBudget, round, variant, g)
		}
		round++
		newly = newly[:0]
		updates += int64(len(st.order))
		// Push half: identical to pp.
		for _, v := range st.order {
			w := g.RandomNeighbor(v, rng)
			if !st.informed.get(w) && (prob >= 1 || rng.Bernoulli(prob)) {
				newly = append(newly, pending{w, v})
			}
		}
		// Pull half: modified probabilities of Definitions 5/7.
		st.compactBoundary()
		updates += int64(len(st.boundary))
		for _, v := range st.boundary {
			k := st.infNbrs[v]
			deg := g.Degree(v)
			var p float64
			if variant == PPX && 2*k >= deg {
				p = 1
			} else {
				p = -math.Expm1(-2 * float64(k) / float64(deg))
			}
			if !rng.Bernoulli(p) {
				continue
			}
			w := st.randomInformedNeighbor(v, rng)
			if prob >= 1 || rng.Bernoulli(prob) {
				newly = append(newly, pending{v, w})
			}
		}
		for _, p := range newly {
			if st.informed.get(p.v) {
				continue
			}
			st.markInformed(p.v, p.from)
			informedAt[p.v] = int32(round)
			if cfg.Observer != nil {
				cfg.Observer.OnInformed(float64(round), p.v, p.from)
			}
		}
	}
	return &SyncResult{
		Rounds:      round,
		InformedAt:  informedAt,
		Parent:      st.parent,
		NumInformed: st.num,
		Complete:    st.num == n,
		Updates:     updates,
	}, nil
}
