package core

import (
	"fmt"

	"rumor/internal/graph"
	"rumor/internal/xrand"
)

// RunSyncReference executes the synchronous process by the literal
// Section 2 semantics: EVERY node contacts a uniformly random neighbor
// every round, and a transmission happens when exactly one endpoint of a
// contact was informed before the round.
//
// This is the executable specification. The production engine (RunSync)
// simulates only contacts that can matter — informed callers for push,
// boundary callers for pull — which is distribution-preserving but not
// obviously so; the test suite verifies the two engines' spreading-time
// laws are statistically indistinguishable, and the benchmark suite
// quantifies the optimization (the ablation DESIGN.md calls out).
//
// Cost is Θ(n) per round regardless of progress, so use it on small
// graphs only.
func RunSyncReference(g *graph.Graph, src graph.NodeID, cfg SyncConfig, rng *xrand.RNG) (*SyncResult, error) {
	prob, err := validateCommon(g, src, cfg.Protocol, cfg.TransmitProb)
	if err != nil {
		return nil, err
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = defaultMaxRounds(g.NumNodes())
	}
	n := g.NumNodes()
	sources, err := gatherSources(g, src, cfg.ExtraSources)
	if err != nil {
		return nil, err
	}
	crashes, err := newCrashTracker(n, cfg.Crashes)
	if err != nil {
		return nil, err
	}
	st := newSpreadStateMulti(g, sources)
	informedAt := make([]int32, n)
	for i := range informedAt {
		informedAt[i] = -1
	}
	for _, s := range sources {
		informedAt[s] = 0
		if cfg.Observer != nil {
			cfg.Observer.OnInformed(0, s, -1)
		}
	}

	doPush := cfg.Protocol == Push || cfg.Protocol == PushPull
	doPull := cfg.Protocol == Pull || cfg.Protocol == PushPull

	type pending struct{ v, from graph.NodeID }
	var newly []pending
	round := 0
	for !st.done() {
		if crashes != nil {
			crashes.advance(float64(round + 1))
			if !progressPossible(st, crashes) {
				break
			}
		}
		if round >= maxRounds {
			res := &SyncResult{
				Rounds:      round,
				InformedAt:  informedAt,
				Parent:      st.parent,
				NumInformed: st.num,
				Complete:    st.num == n,
			}
			return res, fmt.Errorf("%w: %d rounds (reference sync %v on %v)", ErrBudget, round, cfg.Protocol, g)
		}
		round++
		newly = newly[:0]
		// The literal protocol: all n nodes contact simultaneously.
		for v := graph.NodeID(0); int(v) < n; v++ {
			if g.Degree(v) == 0 || !aliveIn(crashes, v) {
				continue
			}
			w := g.RandomNeighbor(v, rng)
			if !aliveIn(crashes, w) {
				continue
			}
			vInf, wInf := st.informed[v], st.informed[w]
			if vInf == wInf {
				continue
			}
			switch {
			case vInf && doPush:
				if prob >= 1 || rng.Bernoulli(prob) {
					newly = append(newly, pending{w, v})
				}
			case wInf && doPull:
				if prob >= 1 || rng.Bernoulli(prob) {
					newly = append(newly, pending{v, w})
				}
			}
		}
		for _, p := range newly {
			if st.informed[p.v] {
				continue
			}
			st.markInformed(p.v, p.from)
			informedAt[p.v] = int32(round)
			if cfg.Observer != nil {
				cfg.Observer.OnInformed(float64(round), p.v, p.from)
			}
		}
	}
	return &SyncResult{
		Rounds:      round,
		InformedAt:  informedAt,
		Parent:      st.parent,
		NumInformed: st.num,
		Complete:    st.num == n,
	}, nil
}
