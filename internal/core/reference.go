package core

import (
	"fmt"

	"rumor/internal/graph"
	"rumor/internal/xrand"
)

// RunSyncReference executes the synchronous process by the literal
// Section 2 semantics: EVERY node contacts a uniformly random neighbor
// every round, and a transmission happens when exactly one endpoint of a
// contact was informed before the round.
//
// This is the executable specification. The production engine (RunSync)
// simulates only contacts that can matter — informed callers for push,
// boundary callers for pull — which is distribution-preserving but not
// obviously so; the test suite verifies the two engines' spreading-time
// laws are statistically indistinguishable, and the benchmark suite
// quantifies the optimization (the ablation DESIGN.md calls out).
//
// The oracle deliberately shares no state machinery with the optimized
// engines: informed/boundary tracking is plain bool slices and per-draw
// RNG calls, so a bug in the bitset arenas or batched draw paths cannot
// hide in both engines at once.
//
// Cost is Θ(n) per round regardless of progress, so use it on small
// graphs only.
func RunSyncReference(g *graph.Graph, src graph.NodeID, cfg SyncConfig, rng *xrand.RNG) (*SyncResult, error) {
	prob, err := validateCommon(g, src, cfg.Protocol, cfg.TransmitProb)
	if err != nil {
		return nil, err
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = defaultMaxRounds(g.NumNodes())
	}
	n := g.NumNodes()
	sources, err := gatherSources(g, src, cfg.ExtraSources)
	if err != nil {
		return nil, err
	}
	if len(cfg.Churn) > 0 {
		return nil, fmt.Errorf("%w: the reference engine does not model churn", ErrBadChurn)
	}
	crashes, err := newAvailTracker(n, cfg.Crashes, nil)
	if err != nil {
		return nil, err
	}

	informed := make([]bool, n)
	parent := make([]graph.NodeID, n)
	informedAt := make([]int32, n)
	for i := range parent {
		parent[i] = -1
		informedAt[i] = -1
	}
	num := 0
	inform := func(v, from graph.NodeID, round int) {
		informed[v] = true
		parent[v] = from
		informedAt[v] = int32(round)
		num++
		if cfg.Observer != nil {
			cfg.Observer.OnInformed(float64(round), v, from)
		}
	}
	for _, s := range sources {
		inform(s, -1, 0)
	}

	// Reachable-set size via a plain bool-slice BFS (independent of the
	// engines' bitset machinery).
	reachable := 0
	{
		visited := make([]bool, n)
		queue := make([]graph.NodeID, 0, n)
		for _, s := range sources {
			if !visited[s] {
				visited[s] = true
				queue = append(queue, s)
			}
		}
		for head := 0; head < len(queue); head++ {
			for _, w := range g.Neighbors(queue[head]) {
				if !visited[w] {
					visited[w] = true
					queue = append(queue, w)
				}
			}
		}
		reachable = len(queue)
	}

	// canProgress: some alive uninformed node has an alive informed
	// neighbor (full scan; the oracle does not track a boundary).
	canProgress := func() bool {
		for v := graph.NodeID(0); int(v) < n; v++ {
			if informed[v] || !aliveIn(crashes, v) {
				continue
			}
			for _, w := range g.Neighbors(v) {
				if informed[w] && aliveIn(crashes, w) {
					return true
				}
			}
		}
		return false
	}

	doPush := cfg.Protocol == Push || cfg.Protocol == PushPull
	doPull := cfg.Protocol == Pull || cfg.Protocol == PushPull

	result := func(round int, updates int64) *SyncResult {
		return &SyncResult{
			Rounds:      round,
			InformedAt:  informedAt,
			Parent:      parent,
			NumInformed: num,
			Complete:    num == n,
			Updates:     updates,
		}
	}

	type pending struct{ v, from graph.NodeID }
	var newly []pending
	round := 0
	var updates int64
	for num < reachable {
		if crashes != nil {
			crashes.advance(float64(round+1), nil)
			if !canProgress() {
				break
			}
		}
		if round >= maxRounds {
			return result(round, updates), fmt.Errorf("%w: %d rounds (reference sync %v on %v)", ErrBudget, round, cfg.Protocol, g)
		}
		round++
		newly = newly[:0]
		// The literal protocol: all n nodes contact simultaneously.
		updates += int64(n)
		for v := graph.NodeID(0); int(v) < n; v++ {
			if g.Degree(v) == 0 || !aliveIn(crashes, v) {
				continue
			}
			w := g.RandomNeighbor(v, rng)
			if !aliveIn(crashes, w) {
				continue
			}
			vInf, wInf := informed[v], informed[w]
			if vInf == wInf {
				continue
			}
			switch {
			case vInf && doPush:
				if prob >= 1 || rng.Bernoulli(prob) {
					newly = append(newly, pending{w, v})
				}
			case wInf && doPull:
				if prob >= 1 || rng.Bernoulli(prob) {
					newly = append(newly, pending{v, w})
				}
			}
		}
		for _, p := range newly {
			if informed[p.v] {
				continue
			}
			inform(p.v, p.from, round)
		}
	}
	return result(round, updates), nil
}
