package core

import (
	"sort"

	"rumor/internal/graph"
	"rumor/internal/xrand"
)

// SyncStepper advances a synchronous rumor spreading process one round at
// a time, so callers can inspect the informed set between rounds (e.g. to
// record spreading curves, stop at a coverage threshold, or interleave
// several processes). RunSync is implemented on top of it.
//
// A SyncStepper is single-use and not safe for concurrent use.
type SyncStepper struct {
	g          *graph.Graph
	rng        *xrand.RNG
	st         *spreadState
	informedAt []int32
	crashes    *crashTracker
	observer   Observer
	prob       float64
	doPush     bool
	doPull     bool
	round      int
	finished   bool
	pending    []syncPending
}

type syncPending struct{ v, from graph.NodeID }

// NewSyncStepper validates the configuration and prepares a process with
// the sources informed at round 0. MaxRounds in cfg is ignored — the
// caller controls the loop.
func NewSyncStepper(g *graph.Graph, src graph.NodeID, cfg SyncConfig, rng *xrand.RNG) (*SyncStepper, error) {
	prob, err := validateCommon(g, src, cfg.Protocol, cfg.TransmitProb)
	if err != nil {
		return nil, err
	}
	sources, err := gatherSources(g, src, cfg.ExtraSources)
	if err != nil {
		return nil, err
	}
	crashes, err := newCrashTracker(g.NumNodes(), cfg.Crashes)
	if err != nil {
		return nil, err
	}
	s := &SyncStepper{
		g:          g,
		rng:        rng,
		st:         newSpreadStateMulti(g, sources),
		informedAt: make([]int32, g.NumNodes()),
		crashes:    crashes,
		observer:   cfg.Observer,
		prob:       prob,
		doPush:     cfg.Protocol == Push || cfg.Protocol == PushPull,
		doPull:     cfg.Protocol == Pull || cfg.Protocol == PushPull,
	}
	for i := range s.informedAt {
		s.informedAt[i] = -1
	}
	for _, src := range sources {
		s.informedAt[src] = 0
		if s.observer != nil {
			s.observer.OnInformed(0, src, -1)
		}
	}
	return s, nil
}

// Step executes one round and returns true, or returns false without
// executing anything if the process can make no further progress (all
// reachable nodes informed, or crashes isolated the rumor).
func (s *SyncStepper) Step() bool {
	if s.finished {
		return false
	}
	if s.st.done() {
		s.finished = true
		return false
	}
	if s.crashes != nil {
		s.crashes.advance(float64(s.round + 1))
		if !progressPossible(s.st, s.crashes) {
			s.finished = true
			return false
		}
	}
	s.round++
	round := int32(s.round)
	s.pending = s.pending[:0]
	if s.doPush {
		for _, v := range s.st.order {
			if !aliveIn(s.crashes, v) {
				continue
			}
			w := s.g.RandomNeighbor(v, s.rng)
			if !s.st.informed[w] && aliveIn(s.crashes, w) && (s.prob >= 1 || s.rng.Bernoulli(s.prob)) {
				s.pending = append(s.pending, syncPending{w, v})
			}
		}
	}
	if s.doPull {
		s.st.compactBoundary()
		for _, v := range s.st.boundary {
			if !aliveIn(s.crashes, v) {
				continue
			}
			w := s.g.RandomNeighbor(v, s.rng)
			if s.st.informed[w] && aliveIn(s.crashes, w) && (s.prob >= 1 || s.rng.Bernoulli(s.prob)) {
				s.pending = append(s.pending, syncPending{v, w})
			}
		}
	}
	for _, p := range s.pending {
		if s.st.informed[p.v] {
			continue
		}
		s.st.markInformed(p.v, p.from)
		s.informedAt[p.v] = round
		if s.observer != nil {
			s.observer.OnInformed(float64(round), p.v, p.from)
		}
	}
	return true
}

// Round returns the number of rounds executed so far.
func (s *SyncStepper) Round() int { return s.round }

// NumInformed returns the current informed-node count.
func (s *SyncStepper) NumInformed() int { return s.st.num }

// Informed reports whether v currently knows the rumor.
func (s *SyncStepper) Informed(v graph.NodeID) bool { return s.st.informed[v] }

// Finished reports whether no further progress is possible.
func (s *SyncStepper) Finished() bool {
	return s.finished || s.st.done()
}

// Result snapshots the current state as a SyncResult.
func (s *SyncStepper) Result() *SyncResult {
	return &SyncResult{
		Rounds:      s.round,
		InformedAt:  s.informedAt,
		Parent:      s.st.parent,
		NumInformed: s.st.num,
		Complete:    s.st.num == s.g.NumNodes(),
	}
}

// AsyncStepper advances an asynchronous process one clock tick at a time
// (global-clock view: each step a uniform node contacts a uniform
// neighbor after an Exp(n) time increment). RunAsync with the GlobalClock
// view is implemented on top of it.
type AsyncStepper struct {
	g        *graph.Graph
	rng      *xrand.RNG
	run      *asyncRun
	n        uint64
	t        float64
	steps    int64
	finished bool
}

// NewAsyncStepper validates the configuration and prepares the process.
// MaxSteps and View in cfg are ignored (the caller controls the loop; the
// view is always GlobalClock).
func NewAsyncStepper(g *graph.Graph, src graph.NodeID, cfg AsyncConfig, rng *xrand.RNG) (*AsyncStepper, error) {
	prob, err := validateCommon(g, src, cfg.Protocol, cfg.TransmitProb)
	if err != nil {
		return nil, err
	}
	run, err := newAsyncRun(g, src, cfg, prob)
	if err != nil {
		return nil, err
	}
	return &AsyncStepper{g: g, rng: rng, run: run, n: uint64(g.NumNodes())}, nil
}

// Step executes one clock tick and returns true, or returns false without
// executing anything if no further progress is possible.
func (s *AsyncStepper) Step() bool {
	if s.finished || s.run.st.done() {
		s.finished = true
		return false
	}
	s.steps++
	s.t += s.rng.Exp(float64(s.n))
	if s.run.tick(s.t, s.steps) {
		s.finished = true
		return false
	}
	v := graph.NodeID(s.rng.Uint64n(s.n))
	if s.g.Degree(v) != 0 {
		w := s.g.RandomNeighbor(v, s.rng)
		s.run.contact(s.t, v, w, s.rng)
	}
	return true
}

// Time returns the current simulation time.
func (s *AsyncStepper) Time() float64 { return s.t }

// Steps returns the number of clock ticks executed so far.
func (s *AsyncStepper) Steps() int64 { return s.steps }

// NumInformed returns the current informed-node count.
func (s *AsyncStepper) NumInformed() int { return s.run.st.num }

// Informed reports whether v currently knows the rumor.
func (s *AsyncStepper) Informed(v graph.NodeID) bool { return s.run.st.informed[v] }

// Finished reports whether no further progress is possible.
func (s *AsyncStepper) Finished() bool {
	return s.finished || s.run.st.done()
}

// Result snapshots the current state as an AsyncResult.
func (s *AsyncStepper) Result() *AsyncResult {
	return s.run.result(s.t, s.steps)
}

// Curve is a spreading curve: informed fraction as a function of time
// (rounds for synchronous processes, continuous time for asynchronous).
type Curve struct {
	// Times are the instants at which the informed count increased.
	Times []float64
	// Fractions[i] is the informed fraction from Times[i] (inclusive)
	// until Times[i+1].
	Fractions []float64
}

// FractionAt returns the informed fraction at time t (0 before the first
// informing).
func (c *Curve) FractionAt(t float64) float64 {
	lo, hi := 0, len(c.Times)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.Times[mid] <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return c.Fractions[lo-1]
}

// Curve extracts the spreading curve from a synchronous result.
func (r *SyncResult) Curve() *Curve { return curveFromTimes32(r.InformedAt, len(r.InformedAt)) }

// Curve extracts the spreading curve from an asynchronous result.
func (r *AsyncResult) Curve() *Curve { return curveFromTimes(r.InformedAt, len(r.InformedAt)) }

func curveFromTimes32(at []int32, n int) *Curve {
	times := make([]float64, 0, len(at))
	for _, t := range at {
		if t >= 0 {
			times = append(times, float64(t))
		}
	}
	return buildCurve(times, n)
}

func curveFromTimes(at []float64, n int) *Curve {
	times := make([]float64, 0, len(at))
	for _, t := range at {
		if t >= 0 {
			times = append(times, t)
		}
	}
	return buildCurve(times, n)
}

func buildCurve(times []float64, n int) *Curve {
	if len(times) == 0 || n == 0 {
		return &Curve{}
	}
	sort.Float64s(times)
	c := &Curve{}
	count := 0
	for i := 0; i < len(times); {
		j := i
		for j < len(times) && times[j] == times[i] {
			j++
		}
		count += j - i
		c.Times = append(c.Times, times[i])
		c.Fractions = append(c.Fractions, float64(count)/float64(n))
		i = j
	}
	return c
}
