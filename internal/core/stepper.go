package core

import (
	"fmt"
	"sort"

	"rumor/internal/graph"
	"rumor/internal/xrand"
)

// SyncStepper advances a synchronous rumor spreading process one round at
// a time, so callers can inspect the informed set between rounds (e.g. to
// record spreading curves, stop at a coverage threshold, or interleave
// several processes). RunSync is implemented on top of it.
//
// All working storage is arena-allocated against the graph once, and
// Reset rewinds the stepper to round 0 for a fresh trial without
// allocating, so a cell's trials reuse one stepper. Not safe for
// concurrent use.
type SyncStepper struct {
	g          *graph.Graph
	topo       graph.Provider // nil for a static topology
	rng        *xrand.RNG
	st         *spreadState
	informedAt []int32
	avail      *availTracker
	observer   Observer
	sources    []graph.NodeID
	prob       float64
	doPush     bool
	doPull     bool
	round      int
	updates    int64
	// aliveInformed counts informed nodes currently online; maintained
	// only when a schedule is present. Zero with no joins pending means
	// the rumor is stranded regardless of future topology.
	aliveInformed int
	finished      bool
	terr          error
	pending       []syncPending
	draws         []uint64
}

type syncPending struct{ v, from graph.NodeID }

// NewSyncStepper validates the configuration and prepares a process with
// the sources informed at round 0. MaxRounds in cfg is ignored — the
// caller controls the loop.
func NewSyncStepper(g *graph.Graph, src graph.NodeID, cfg SyncConfig, rng *xrand.RNG) (*SyncStepper, error) {
	return newSyncStepper(g, nil, src, cfg, rng)
}

// NewSyncStepperTopo is NewSyncStepper over a time-varying topology:
// round r executes on topo's graph at time r-1 (round 1 runs on the
// epoch-0 graph). Reachability-based early termination is disabled — a
// future epoch may reconnect the rumor — so runs on topologies that
// never reach some node end only at the caller's round budget (or when
// churn has permanently removed the unreachable nodes). Topology
// materialization errors surface through Err.
func NewSyncStepperTopo(topo graph.Provider, src graph.NodeID, cfg SyncConfig, rng *xrand.RNG) (*SyncStepper, error) {
	if st, ok := topo.(*graph.Static); ok {
		g, _ := st.At(0)
		return newSyncStepper(g, nil, src, cfg, rng)
	}
	g, _ := topo.At(0)
	return newSyncStepper(g, topo, src, cfg, rng)
}

func newSyncStepper(g *graph.Graph, topo graph.Provider, src graph.NodeID, cfg SyncConfig, rng *xrand.RNG) (*SyncStepper, error) {
	prob, err := validateCommon(g, src, cfg.Protocol, cfg.TransmitProb)
	if err != nil {
		return nil, err
	}
	sources, err := gatherSources(g, src, cfg.ExtraSources)
	if err != nil {
		return nil, err
	}
	avail, err := newAvailTracker(g.NumNodes(), cfg.Crashes, cfg.Churn)
	if err != nil {
		return nil, err
	}
	s := &SyncStepper{
		g:          g,
		topo:       topo,
		rng:        rng,
		st:         newSpreadStateMulti(g, sources),
		informedAt: make([]int32, g.NumNodes()),
		avail:      avail,
		observer:   cfg.Observer,
		sources:    sources,
		prob:       prob,
		doPush:     cfg.Protocol == Push || cfg.Protocol == PushPull,
		doPull:     cfg.Protocol == Pull || cfg.Protocol == PushPull,
	}
	s.aliveInformed = len(sources)
	if topo != nil {
		// Dynamic topology: static reachability means nothing; every
		// node not permanently churned out is a completion target.
		s.st.reachable = g.NumNodes()
	}
	s.startTrial()
	return s, nil
}

// Reset rewinds the stepper to round 0 for a new trial driven by rng,
// reusing all internal storage (steady-state trials allocate nothing).
// Slices of results snapshotted before the Reset are invalidated: they
// alias the stepper's arenas and will be overwritten.
func (s *SyncStepper) Reset(rng *xrand.RNG) {
	s.rng = rng
	reachable := s.st.reachable
	if s.topo != nil {
		s.topo.Reset()
		g, _ := s.topo.At(0)
		s.g = g
		s.st.g = g
		reachable = g.NumNodes()
	}
	s.st.reset(s.sources, reachable)
	if s.avail != nil {
		s.avail.reset()
	}
	s.round = 0
	s.updates = 0
	s.aliveInformed = len(s.sources)
	s.finished = false
	s.terr = nil
	s.pending = s.pending[:0]
	s.startTrial()
}

// startTrial stamps the sources into informedAt and notifies the observer.
func (s *SyncStepper) startTrial() {
	for i := range s.informedAt {
		s.informedAt[i] = -1
	}
	for _, src := range s.sources {
		s.informedAt[src] = 0
		if s.observer != nil {
			s.observer.OnInformed(0, src, -1)
		}
	}
}

// fillDraws returns a buffer of k raw 64-bit draws from the stepper's
// generator, reusing the stepper's draw arena.
func (s *SyncStepper) fillDraws(k int) []uint64 {
	if cap(s.draws) < k {
		s.draws = make([]uint64, k)
	}
	d := s.draws[:k]
	s.rng.Fill(d)
	return d
}

// Step executes one round and returns true, or returns false without
// executing anything if the process can make no further progress (all
// reachable nodes informed, or crashes isolated the rumor).
//
// Neighbor draws are batched: the round's raw 64-bit values are filled
// into one buffer up front and reduced to each caller's degree by
// Lemire's multiply-shift, so the generator state stays in registers and
// the reduction needs no division.
func (s *SyncStepper) Step() bool {
	if s.finished {
		return false
	}
	if s.st.done() {
		s.finished = true
		return false
	}
	if s.avail != nil {
		s.avail.advance(float64(s.round+1), s.applyChurn)
		if s.st.done() {
			// An amnesiac rejoin or permanent leave moved the target.
			s.finished = true
			return false
		}
		if s.topo == nil {
			if !progressPossible(s.st, s.avail) && !s.avail.hasFutureJoin() {
				s.finished = true
				return false
			}
		} else if s.aliveInformed == 0 && !s.avail.hasFutureJoin() {
			// Dynamic topology: a static progress scan is meaningless
			// (a later epoch may reconnect the rumor), but a network
			// with no online informed node and no joins left is dead.
			s.finished = true
			return false
		}
	}
	if s.topo != nil {
		// Round r executes on the topology at time r-1, so round 1 runs
		// on the same epoch-0 graph the trial started with.
		g, changed := s.topo.At(float64(s.round))
		if err := s.topo.Err(); err != nil {
			s.terr = err
			s.finished = true
			return false
		}
		if changed {
			s.g = g
			s.st.rebind(g)
		}
	}
	s.round++
	round := int32(s.round)
	s.pending = s.pending[:0]
	g := s.g
	if s.doPush {
		order := s.st.order
		draws := s.fillDraws(len(order))
		s.updates += int64(len(order))
		for i, v := range order {
			deg := uint64(g.Degree(v))
			if deg == 0 || !aliveIn(s.avail, v) {
				continue
			}
			w := g.Neighbor(v, int32(s.rng.Uint64nFrom(draws[i], deg)))
			if !s.st.informed.get(w) && aliveIn(s.avail, w) && (s.prob >= 1 || s.rng.Bernoulli(s.prob)) {
				s.pending = append(s.pending, syncPending{w, v})
			}
		}
	}
	if s.doPull {
		s.st.compactBoundary()
		boundary := s.st.boundary
		draws := s.fillDraws(len(boundary))
		s.updates += int64(len(boundary))
		for i, v := range boundary {
			if !aliveIn(s.avail, v) {
				continue
			}
			// Boundary nodes have an informed neighbor, so deg >= 1.
			deg := uint64(g.Degree(v))
			w := g.Neighbor(v, int32(s.rng.Uint64nFrom(draws[i], deg)))
			if s.st.informed.get(w) && aliveIn(s.avail, w) && (s.prob >= 1 || s.rng.Bernoulli(s.prob)) {
				s.pending = append(s.pending, syncPending{v, w})
			}
		}
	}
	for _, p := range s.pending {
		if s.st.informed.get(p.v) {
			continue
		}
		s.st.markInformed(p.v, p.from)
		s.informedAt[p.v] = round
		s.aliveInformed++
		if s.observer != nil {
			s.observer.OnInformed(float64(round), p.v, p.from)
		}
	}
	return true
}

// applyChurn is the availTracker transition callback: it keeps the
// online-informed count, the amnesiac-rejoin uninform, and (on dynamic
// topologies) the completion target in sync with the offline set.
func (s *SyncStepper) applyChurn(ev ChurnEvent, perm bool) {
	v := ev.Node
	switch ev.Op {
	case ChurnLeave:
		if s.st.informed.get(v) {
			s.aliveInformed--
		} else if perm && s.topo != nil {
			// Gone for good and never informed: it can no longer count
			// against completion. Static topologies instead terminate
			// through the progress scan, which handles disconnected
			// base graphs correctly.
			s.st.reachable--
		}
	case ChurnJoin:
		if !s.st.informed.get(v) {
			return
		}
		if ev.DropState {
			s.st.uninform(v)
			s.informedAt[v] = -1
		} else {
			s.aliveInformed++
		}
	}
}

// Err returns the deferred topology-materialization error that ended
// the run early, if any. Static-topology steppers always return nil.
func (s *SyncStepper) Err() error { return s.terr }

// Round returns the number of rounds executed so far.
func (s *SyncStepper) Round() int { return s.round }

// NumInformed returns the current informed-node count.
func (s *SyncStepper) NumInformed() int { return s.st.num }

// Informed reports whether v currently knows the rumor.
func (s *SyncStepper) Informed(v graph.NodeID) bool { return s.st.informed.get(v) }

// Finished reports whether no further progress is possible.
func (s *SyncStepper) Finished() bool {
	return s.finished || s.st.done()
}

// Updates returns the number of node-step operations executed so far.
func (s *SyncStepper) Updates() int64 { return s.updates }

// Result snapshots the current state as a SyncResult. The slices alias
// the stepper's arenas: they are valid until the next Reset.
func (s *SyncStepper) Result() *SyncResult {
	return &SyncResult{
		Rounds:      s.round,
		InformedAt:  s.informedAt,
		Parent:      s.st.parent,
		NumInformed: s.st.num,
		Complete:    s.st.num == s.g.NumNodes(),
		Updates:     s.updates,
	}
}

// AsyncStepper advances an asynchronous process one clock tick at a time
// using the Gillespie direct method for uniform rates: because every
// clock in a view runs at the same rate, the next event time is one
// Exp(total rate) draw and the next actor is one uniform draw — no
// per-event heap. This is exact for all three views:
//
//   - GlobalClock / PerNodeClocks: n unit-rate node clocks superpose into
//     a rate-n process whose ticks select a uniform node.
//   - PerEdgeClocks: node v's deg(v) edge clocks of rate 1/deg(v) sum to
//     rate 1, so ticks select a uniform degree-positive node, which then
//     contacts a uniform neighbor.
//
// Crash schedules are handled by thinning: time keeps advancing at the
// full rate and a crashed actor's ticks are discarded, which leaves every
// alive clock a unit-rate Poisson process (the same law as stopping the
// crashed clocks, as the heap-based engines in async.go do).
//
// Reset rewinds to time 0 for a fresh trial without allocating.
type AsyncStepper struct {
	g        *graph.Graph
	topo     graph.Provider // nil for a static topology
	rng      *xrand.RNG
	run      *asyncRun
	eligible []graph.NodeID // PerEdgeClocks: degree-positive nodes; nil if all are
	rate     float64        // total tick rate of the superposed process
	n        uint64         // size of the actor draw range
	t        float64
	steps    int64
	finished bool
	terr     error
}

// NewAsyncStepper validates the configuration and prepares the process.
// MaxSteps in cfg is ignored — the caller controls the loop. View
// selects the tick semantics as in RunAsync (0 means GlobalClock).
func NewAsyncStepper(g *graph.Graph, src graph.NodeID, cfg AsyncConfig, rng *xrand.RNG) (*AsyncStepper, error) {
	return newAsyncStepper(g, nil, src, cfg, rng)
}

// NewAsyncStepperTopo is NewAsyncStepper over a time-varying topology:
// the contact at each tick uses topo's graph at the tick time.
// Reachability-based early termination is disabled, and the
// PerEdgeClocks view is rejected — its per-edge rates are tied to a
// fixed adjacency. Topology materialization errors surface through Err.
func NewAsyncStepperTopo(topo graph.Provider, src graph.NodeID, cfg AsyncConfig, rng *xrand.RNG) (*AsyncStepper, error) {
	if st, ok := topo.(*graph.Static); ok {
		g, _ := st.At(0)
		return newAsyncStepper(g, nil, src, cfg, rng)
	}
	if cfg.View == PerEdgeClocks {
		return nil, fmt.Errorf("%w: per-edge-clocks is not supported on a dynamic topology", ErrBadView)
	}
	g, _ := topo.At(0)
	return newAsyncStepper(g, topo, src, cfg, rng)
}

func newAsyncStepper(g *graph.Graph, topo graph.Provider, src graph.NodeID, cfg AsyncConfig, rng *xrand.RNG) (*AsyncStepper, error) {
	prob, err := validateCommon(g, src, cfg.Protocol, cfg.TransmitProb)
	if err != nil {
		return nil, err
	}
	view := cfg.View
	if view == 0 {
		view = GlobalClock
	}
	if !view.valid() {
		return nil, fmt.Errorf("%w: %d", ErrBadView, int(view))
	}
	if view == PerEdgeClocks && len(cfg.Churn) > 0 {
		return nil, fmt.Errorf("%w: churn schedules are not supported in the per-edge-clocks view", ErrBadView)
	}
	run, err := newAsyncRun(g, src, cfg, prob)
	if err != nil {
		return nil, err
	}
	s := &AsyncStepper{g: g, topo: topo, rng: rng, run: run}
	n := g.NumNodes()
	if topo != nil {
		run.dynamic = true
		run.st.reachable = n
	}
	if view == PerEdgeClocks {
		for v := graph.NodeID(0); int(v) < n; v++ {
			if g.Degree(v) > 0 {
				s.eligible = append(s.eligible, v)
			}
		}
		s.n = uint64(len(s.eligible))
		if len(s.eligible) == n {
			s.eligible = nil // all degree-positive: draw node IDs directly
		}
	} else {
		s.n = uint64(n)
	}
	s.rate = float64(s.n)
	return s, nil
}

// Reset rewinds the stepper to time 0 for a new trial driven by rng,
// reusing all internal storage. Results snapshotted before the Reset are
// invalidated: their slices alias the stepper's arenas.
func (s *AsyncStepper) Reset(rng *xrand.RNG) {
	s.rng = rng
	if s.topo != nil {
		s.topo.Reset()
		g, _ := s.topo.At(0)
		s.g = g
		s.run.st.g = g
	}
	s.run.reset()
	s.t = 0
	s.steps = 0
	s.finished = false
	s.terr = nil
}

// Step executes one clock tick and returns true, or returns false without
// executing anything if no further progress is possible.
func (s *AsyncStepper) Step() bool {
	if s.finished || s.run.st.done() || s.n == 0 {
		s.finished = true
		return false
	}
	s.steps++
	s.t += s.rng.Exp(s.rate)
	if s.run.tick(s.t, s.steps) {
		s.finished = true
		return false
	}
	if s.topo != nil {
		g, changed := s.topo.At(s.t)
		if err := s.topo.Err(); err != nil {
			s.terr = err
			s.finished = true
			return false
		}
		if changed {
			s.g = g
			s.run.st.rebind(g)
		}
	}
	var v graph.NodeID
	if s.eligible != nil {
		v = s.eligible[s.rng.Uint64n(s.n)]
	} else {
		v = graph.NodeID(s.rng.Uint64n(s.n))
	}
	if s.g.Degree(v) != 0 {
		w := s.g.RandomNeighbor(v, s.rng)
		s.run.contact(s.t, v, w, s.rng)
	}
	return true
}

// Err returns the deferred topology-materialization error that ended
// the run early, if any. Static-topology steppers always return nil.
func (s *AsyncStepper) Err() error { return s.terr }

// Time returns the current simulation time.
func (s *AsyncStepper) Time() float64 { return s.t }

// Steps returns the number of clock ticks executed so far.
func (s *AsyncStepper) Steps() int64 { return s.steps }

// NumInformed returns the current informed-node count.
func (s *AsyncStepper) NumInformed() int { return s.run.st.num }

// Informed reports whether v currently knows the rumor.
func (s *AsyncStepper) Informed(v graph.NodeID) bool { return s.run.st.informed.get(v) }

// Finished reports whether no further progress is possible.
func (s *AsyncStepper) Finished() bool {
	return s.finished || s.run.st.done()
}

// Result snapshots the current state as an AsyncResult.
func (s *AsyncStepper) Result() *AsyncResult {
	return s.run.result(s.t, s.steps)
}

// Curve is a spreading curve: informed fraction as a function of time
// (rounds for synchronous processes, continuous time for asynchronous).
type Curve struct {
	// Times are the instants at which the informed count increased.
	Times []float64
	// Fractions[i] is the informed fraction from Times[i] (inclusive)
	// until Times[i+1].
	Fractions []float64
}

// FractionAt returns the informed fraction at time t (0 before the first
// informing).
func (c *Curve) FractionAt(t float64) float64 {
	lo, hi := 0, len(c.Times)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.Times[mid] <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return c.Fractions[lo-1]
}

// Curve extracts the spreading curve from a synchronous result.
func (r *SyncResult) Curve() *Curve { return curveFromTimes32(r.InformedAt, len(r.InformedAt)) }

// Curve extracts the spreading curve from an asynchronous result.
func (r *AsyncResult) Curve() *Curve { return curveFromTimes(r.InformedAt, len(r.InformedAt)) }

func curveFromTimes32(at []int32, n int) *Curve {
	times := make([]float64, 0, len(at))
	for _, t := range at {
		if t >= 0 {
			times = append(times, float64(t))
		}
	}
	return buildCurve(times, n)
}

func curveFromTimes(at []float64, n int) *Curve {
	times := make([]float64, 0, len(at))
	for _, t := range at {
		if t >= 0 {
			times = append(times, t)
		}
	}
	return buildCurve(times, n)
}

func buildCurve(times []float64, n int) *Curve {
	if len(times) == 0 || n == 0 {
		return &Curve{}
	}
	sort.Float64s(times)
	c := &Curve{}
	count := 0
	for i := 0; i < len(times); {
		j := i
		for j < len(times) && times[j] == times[i] {
			j++
		}
		count += j - i
		c.Times = append(c.Times, times[i])
		c.Fractions = append(c.Fractions, float64(count)/float64(n))
		i = j
	}
	return c
}
