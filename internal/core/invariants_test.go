package core

import (
	"math"
	"testing"
	"testing/quick"

	"rumor/internal/graph"
	"rumor/internal/xrand"
)

// Cross-cutting invariants exercised across protocols, views, and graph
// shapes — the "no matter what, these hold" layer of the test suite.

func TestQuickSyncInvariantsRandomGraphs(t *testing.T) {
	f := func(seed uint64, rawN uint8, rawProto uint8) bool {
		n := int(rawN%60) + 5
		proto := Protocol(rawProto%3) + 1
		rng := xrand.New(seed)
		g, err := graph.GNPConnected(n, 0.3, rng, 200)
		if err != nil {
			return true // too unlucky to build; skip
		}
		res, err := RunSync(g, 0, SyncConfig{Protocol: proto}, rng)
		if err != nil {
			return false
		}
		if !res.Complete {
			return false
		}
		// Informing times respect BFS distances.
		dist := graph.BFS(g, 0)
		for v := 0; v < n; v++ {
			if res.InformedAt[v] < dist[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAsyncCausality(t *testing.T) {
	f := func(seed uint64, rawN uint8, rawView uint8) bool {
		n := int(rawN%40) + 5
		view := AsyncView(rawView%3) + 1
		rng := xrand.New(seed)
		g, err := graph.GNPConnected(n, 0.35, rng, 200)
		if err != nil {
			return true
		}
		res, err := RunAsync(g, 0, AsyncConfig{Protocol: PushPull, View: view}, rng)
		if err != nil || !res.Complete {
			return false
		}
		for v := 0; v < n; v++ {
			p := res.Parent[v]
			if p < 0 {
				continue
			}
			if res.InformedAt[p] >= res.InformedAt[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// countingObserver tallies OnInformed calls.
type countingObserver struct {
	events int
	lastT  float64
	ooo    bool // out-of-order event times seen
}

func (c *countingObserver) OnInformed(t float64, v, from graph.NodeID) {
	c.events++
	if t < c.lastT {
		c.ooo = true
	}
	c.lastT = t
}

func TestObserverSeesEveryInformingSync(t *testing.T) {
	g := mustGraph(graph.Hypercube(6))
	obs := &countingObserver{}
	res, err := RunSync(g, 0, SyncConfig{Protocol: PushPull, Observer: obs}, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if obs.events != res.NumInformed {
		t.Fatalf("observer saw %d events for %d informings", obs.events, res.NumInformed)
	}
	if obs.ooo {
		t.Fatal("observer event times not monotone")
	}
}

func TestObserverSeesEveryInformingAsync(t *testing.T) {
	g := mustGraph(graph.Hypercube(6))
	for _, view := range []AsyncView{GlobalClock, PerNodeClocks, PerEdgeClocks} {
		obs := &countingObserver{}
		res, err := RunAsync(g, 0, AsyncConfig{Protocol: PushPull, View: view, Observer: obs}, xrand.New(2))
		if err != nil {
			t.Fatal(err)
		}
		if obs.events != res.NumInformed {
			t.Fatalf("%v: observer saw %d events for %d informings", view, obs.events, res.NumInformed)
		}
		if obs.ooo {
			t.Fatalf("%v: event times not monotone", view)
		}
	}
}

func TestTransmitProbNearZeroStillTerminates(t *testing.T) {
	g := mustGraph(graph.Complete(16))
	res, err := RunSync(g, 0, SyncConfig{Protocol: PushPull, TransmitProb: 1e-3, MaxRounds: 500}, xrand.New(3))
	// Either completes (unlikely) or hits the budget; both must return a
	// structurally valid partial result.
	if err == nil {
		checkSyncResult(t, g, 0, res)
	} else if res == nil {
		t.Fatal("budget error without partial result")
	}
}

func TestPullOnlyFromLeafOnStar(t *testing.T) {
	// Pull-only with a leaf source: the center can pull from the leaf
	// (center contacts uniform leaf: probability 1/(n-1) per round), and
	// until then nothing else can happen. Expect ~n rounds for the
	// center, then 1 more round for all other leaves.
	g := mustGraph(graph.Star(32))
	var sum float64
	const trials = 40
	for seed := uint64(0); seed < trials; seed++ {
		res, err := RunSync(g, 1, SyncConfig{Protocol: Pull}, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Complete {
			t.Fatal("pull-only star incomplete")
		}
		sum += float64(res.Rounds)
	}
	mean := sum / trials
	if mean < 10 || mean > 100 {
		t.Fatalf("pull-only star from leaf: mean %v rounds, want ~31", mean)
	}
}

func TestAsyncTimeMatchesLastInforming(t *testing.T) {
	g := mustGraph(graph.Complete(32))
	res, err := RunAsync(g, 0, AsyncConfig{Protocol: PushPull}, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	maxAt := 0.0
	for _, at := range res.InformedAt {
		if at > maxAt {
			maxAt = at
		}
	}
	if math.Abs(res.Time-maxAt) > 1e-12 {
		t.Fatalf("Time %v != last informing %v", res.Time, maxAt)
	}
}

func TestSyncRoundsMatchesLastInforming(t *testing.T) {
	g := mustGraph(graph.Hypercube(5))
	res, err := RunSync(g, 0, SyncConfig{Protocol: PushPull}, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	var maxAt int32
	for _, at := range res.InformedAt {
		if at > maxAt {
			maxAt = at
		}
	}
	if int(maxAt) != res.Rounds {
		t.Fatalf("Rounds %d != last informing round %d", res.Rounds, maxAt)
	}
}

func TestTwoNodeAllProtocolViews(t *testing.T) {
	g := mustGraph(graph.Path(2))
	for _, p := range []Protocol{Push, Pull, PushPull} {
		res, err := RunSync(g, 0, SyncConfig{Protocol: p}, xrand.New(uint64(p)))
		if err != nil || !res.Complete || res.Rounds != 1 {
			t.Fatalf("sync %v on K_2: rounds=%d err=%v", p, res.Rounds, err)
		}
		for _, view := range []AsyncView{GlobalClock, PerNodeClocks, PerEdgeClocks} {
			ares, err := RunAsync(g, 0, AsyncConfig{Protocol: p, View: view}, xrand.New(uint64(p)*7+uint64(view)))
			if err != nil || !ares.Complete {
				t.Fatalf("async %v/%v on K_2: err=%v", p, view, err)
			}
		}
	}
}

// The paper's remark on regular graphs: push-a crosses each edge at half
// the push-pull rate, so E[T(push-a)] ≈ 2·E[T(pp-a)] exactly — verify
// the factor on the CYCLE whose long spreading time gives tight
// concentration.
func TestAsyncPushExactlyTwiceOnCycleMeans(t *testing.T) {
	g := mustGraph(graph.Cycle(128))
	const trials = 60
	var push, pp float64
	for seed := uint64(0); seed < trials; seed++ {
		a, err := RunAsync(g, 0, AsyncConfig{Protocol: Push}, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunAsync(g, 0, AsyncConfig{Protocol: PushPull}, xrand.New(seed+5000))
		if err != nil {
			t.Fatal(err)
		}
		push += a.Time
		pp += b.Time
	}
	ratio := push / pp
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("cycle push/pp mean ratio = %v, want ~2", ratio)
	}
}
