// Package dist provides small distribution utilities used by the
// experiments: empirical stochastic-dominance checks (for the paper's
// Lemma 6 domination chain) and parametric distributions with
// deterministic sampling via xrand.
package dist

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"rumor/internal/xrand"
)

// ErrBadRate reports an invalid distribution rate parameter.
var ErrBadRate = errors.New("dist: rate must be positive and finite")

// Exp is an exponential distribution with rate λ (mean 1/λ).
type Exp struct {
	rate float64
}

// NewExp returns an exponential distribution with the given rate.
func NewExp(rate float64) (*Exp, error) {
	if !(rate > 0) || math.IsInf(rate, 1) {
		return nil, fmt.Errorf("%w: %v", ErrBadRate, rate)
	}
	return &Exp{rate: rate}, nil
}

// Rate returns the rate parameter λ.
func (e *Exp) Rate() float64 { return e.rate }

// Mean returns 1/λ.
func (e *Exp) Mean() float64 { return 1 / e.rate }

// Sample draws one variate using the given RNG.
func (e *Exp) Sample(rng *xrand.RNG) float64 { return rng.Exp(e.rate) }

// DominatedEmpirically reports whether the sample xs is (approximately)
// stochastically dominated by ys: X ≼ Y iff F_X(t) >= F_Y(t) for all t,
// i.e. X tends to be smaller. Empirically the check allows a one-sided
// slack tol on the CDF gap, so it passes iff
//
//	max_t ( F̂_ys(t) - F̂_xs(t) ) <= tol,
//
// the one-sided Kolmogorov–Smirnov statistic of ys over xs. Empty
// samples are trivially dominated.
func DominatedEmpirically(xs, ys []float64, tol float64) bool {
	return dominanceGap(xs, ys) <= tol
}

// DominatedEmpiricallyInt is DominatedEmpirically for integer samples.
func DominatedEmpiricallyInt(xs, ys []int64, tol float64) bool {
	fx := make([]float64, len(xs))
	for i, v := range xs {
		fx[i] = float64(v)
	}
	fy := make([]float64, len(ys))
	for i, v := range ys {
		fy[i] = float64(v)
	}
	return DominatedEmpirically(fx, fy, tol)
}

// dominanceGap returns max_t (F̂_ys(t) - F̂_xs(t)), the worst one-sided
// deviation of the empirical CDFs; <= 0 means xs is dominated exactly.
func dominanceGap(xs, ys []float64) float64 {
	if len(xs) == 0 || len(ys) == 0 {
		return 0
	}
	sx := append([]float64(nil), xs...)
	sy := append([]float64(nil), ys...)
	sort.Float64s(sx)
	sort.Float64s(sy)
	nx, ny := float64(len(sx)), float64(len(sy))
	gap := math.Inf(-1)
	i, j := 0, 0
	for i < len(sx) || j < len(sy) {
		var t float64
		switch {
		case i >= len(sx):
			t = sy[j]
		case j >= len(sy):
			t = sx[i]
		case sx[i] <= sy[j]:
			t = sx[i]
		default:
			t = sy[j]
		}
		for i < len(sx) && sx[i] <= t {
			i++
		}
		for j < len(sy) && sy[j] <= t {
			j++
		}
		if d := float64(j)/ny - float64(i)/nx; d > gap {
			gap = d
		}
	}
	return gap
}
