package dist

import (
	"errors"
	"math"
	"testing"

	"rumor/internal/xrand"
)

func TestNewExpValidation(t *testing.T) {
	for _, rate := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewExp(rate); !errors.Is(err, ErrBadRate) {
			t.Errorf("rate %v: err = %v, want ErrBadRate", rate, err)
		}
	}
	e, err := NewExp(2)
	if err != nil {
		t.Fatal(err)
	}
	if e.Rate() != 2 || e.Mean() != 0.5 {
		t.Errorf("rate/mean = %v/%v", e.Rate(), e.Mean())
	}
}

func TestExpSampleMean(t *testing.T) {
	e, err := NewExp(4)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(1)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += e.Sample(rng)
	}
	mean := sum / n
	if math.Abs(mean-0.25) > 0.01 {
		t.Errorf("sample mean %v, want ~0.25", mean)
	}
}

func TestDominatedEmpirically(t *testing.T) {
	rng := xrand.New(2)
	small := make([]float64, 500)
	big := make([]float64, 500)
	for i := range small {
		small[i] = rng.Float64()
		big[i] = rng.Float64() + 0.5
	}
	if !DominatedEmpirically(small, big, 0.05) {
		t.Error("clearly smaller sample not dominated")
	}
	if DominatedEmpirically(big, small, 0.05) {
		t.Error("clearly bigger sample reported dominated")
	}
	// A sample dominates itself exactly (gap 0).
	if !DominatedEmpirically(small, small, 0) {
		t.Error("sample does not dominate itself")
	}
	// Empty samples are trivially dominated.
	if !DominatedEmpirically(nil, big, 0) || !DominatedEmpirically(small, nil, 0) {
		t.Error("empty sample handling wrong")
	}
}

func TestDominatedEmpiricallyTolerance(t *testing.T) {
	// xs slightly above ys: dominated only with enough slack.
	xs := []float64{1.1, 2.1, 3.1}
	ys := []float64{1, 2, 3}
	if DominatedEmpirically(xs, ys, 0.2) {
		t.Error("shifted-up sample dominated with small tol")
	}
	if !DominatedEmpirically(xs, ys, 0.4) {
		// Each step the ys CDF leads by 1/3 until xs catches up.
		t.Error("shifted-up sample not dominated with generous tol")
	}
}

func TestDominatedEmpiricallyInt(t *testing.T) {
	xs := []int64{1, 2, 3, 4}
	ys := []int64{2, 3, 4, 5}
	if !DominatedEmpiricallyInt(xs, ys, 0) {
		t.Error("integer domination failed")
	}
	if DominatedEmpiricallyInt(ys, xs, 0.1) {
		t.Error("reverse integer domination accepted")
	}
}
