// Command experiments regenerates the paper's evaluation: it runs the
// E1–E15 experiment suite (every theorem, corollary, lemma, and worked
// example the paper states; see DESIGN.md §5) and prints paper-expected
// versus measured results with a verdict per experiment.
//
// Examples:
//
//	experiments                 # full suite (minutes)
//	experiments -quick          # reduced sizes/trials (seconds)
//	experiments -run E11        # a single experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rumor/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		quick    = fs.Bool("quick", false, "reduced sizes and trial counts")
		runID    = fs.String("run", "", "run a single experiment (E1..E15)")
		seed     = fs.Uint64("seed", 0, "root seed (0 = default)")
		workers  = fs.Int("workers", 0, "parallel workers (0 = all cores)")
		markdown = fs.String("md", "", "also write a Markdown report to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.Config{
		Quick:   *quick,
		Seed:    *seed,
		Workers: *workers,
		Out:     os.Stdout,
	}
	if *runID != "" {
		e, err := experiments.ByID(*runID)
		if err != nil {
			return err
		}
		fmt.Printf("=== %s: %s ===\n%s\n\n", e.ID, e.Title, e.Claim)
		o, err := e.Run(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%s verdict: %v — %s\n", o.ID, o.Verdict, o.Summary)
		if o.Verdict == experiments.Failed {
			os.Exit(2)
		}
		return nil
	}
	outcomes, err := experiments.RunAll(cfg)
	if err != nil {
		return err
	}
	if *markdown != "" {
		f, err := os.Create(*markdown)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := experiments.WriteMarkdownReport(f, outcomes, cfg, time.Now()); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *markdown)
	}
	for _, o := range outcomes {
		if o.Verdict == experiments.Failed {
			os.Exit(2)
		}
	}
	return nil
}
