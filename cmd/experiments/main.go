// Command experiments regenerates the paper's evaluation: it runs the
// E1–E15 experiment suite (every theorem, corollary, lemma, and worked
// example the paper states; see DESIGN.md §5) and prints paper-expected
// versus measured results with a verdict per experiment.
//
// Every experiment is a grid of service cells reduced by a pure
// function; this command runs the grids through the same executor the
// rumord daemon uses, so a result computed here is byte-identical with
// the daemon's (and, with -cache, repeated cells — e.g. the grid E2 and
// E3 share — are computed once).
//
// Examples:
//
//	experiments                      # full suite (minutes)
//	experiments -quick               # reduced sizes/trials (seconds)
//	experiments -run E11             # a single experiment
//	experiments -quick -cache        # serve repeated cells from the result LRU
//	experiments -quick -cache-dir D  # persistent cache: warm replay survives restarts
//	experiments -quick -bench B.json # cold vs warm suite timing to B.json
//	experiments -quick -metrics-out M.prom
//	                                 # dump a Prometheus snapshot of the
//	                                 # run's latency histograms and cache
//	                                 # counters (with -server, scrape the
//	                                 # daemon's /metrics instead)
//	experiments -quick -server http://localhost:8080
//	                                 # run every cell on a rumord daemon via
//	                                 # the client SDK; verdicts and output are
//	                                 # byte-identical to the in-process path,
//	                                 # and dropped result streams resume from
//	                                 # their cursor without recomputation
//	experiments -quick -peers host-a:8080,host-b:8080,host-c:8080
//	                                 # shard every cell over a cluster of
//	                                 # rumord peers by cell key; a peer that
//	                                 # dies mid-suite has its unfinished cells
//	                                 # reassigned to the survivors, and the
//	                                 # output stays byte-identical
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"rumor/client"
	"rumor/internal/cachestore"
	"rumor/internal/core"
	"rumor/internal/experiments"
	"rumor/internal/graph"
	"rumor/internal/obs"
	peerlist "rumor/internal/peers"
	"rumor/internal/service"
	"rumor/internal/shard"
	"rumor/internal/xrand"
)

// newServerRunner builds the SDK-backed cell runner for -server (test
// hook: fault-injection tests swap in a client with a cutting
// transport to force a mid-suite stream reconnect).
var newServerRunner = func(baseURL string) (service.CellRunner, error) {
	return client.New(baseURL)
}

// newPeersRunner builds the sharding cell runner for -peers (test hook:
// fault-injection tests swap in coordinator clients with peer-killing
// transports to force a mid-suite failover). reg, when non-nil,
// receives the rumor_shard_* instruments for -metrics-out.
var newPeersRunner = func(peers []string, reg *obs.Registry) (service.CellRunner, error) {
	cfg := shard.Config{Peers: peers}
	if reg != nil {
		cfg.Metrics = shard.NewMetrics(reg)
	}
	return shard.New(cfg)
}

// errVerdictFailed reports that an experiment contradicted the paper:
// run returns it (rather than calling os.Exit directly) so deferred
// cleanup — flushing the persistent cache — still happens.
var errVerdictFailed = errors.New("experiments: at least one verdict is FAILED")

func main() {
	err := run(os.Args[1:], os.Stdout)
	if errors.Is(err, errVerdictFailed) {
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		quick      = fs.Bool("quick", false, "reduced sizes and trial counts")
		runID      = fs.String("run", "", "run a single experiment (E1..E15, E17)")
		seed       = fs.Uint64("seed", 0, "root seed (0 = default)")
		workers    = fs.Int("workers", 0, "parallel cells in flight (0 = all cores)")
		markdown   = fs.String("md", "", "also write a Markdown report to this file")
		cache      = fs.Bool("cache", false, "serve repeated cells from a result LRU (rumord's cache tier)")
		cacheDir   = fs.String("cache-dir", "", "persistent cell-result store directory: cells computed by any prior run (or a rumord with the same dir) replay from disk")
		bench      = fs.String("bench", "", "run the suite twice (cold, then warm cache) and write timing JSON to this file")
		benchLarge = fs.Bool("bench-large", false, "with -bench: also time single sync cells on 10^6- and 10^7-node random graphs (adds minutes and ~2GB)")
		server     = fs.String("server", "", "run every cell on a rumord server at this base URL via the client SDK (reducers still run locally; output is byte-identical to the in-process path)")
		peersFlag  = fs.String("peers", "", "comma-separated rumord peer base URLs: shard every cell over the cluster by cell key, with failover (like -server across many daemons; output stays byte-identical)")
		metricsOut = fs.String("metrics-out", "", "write a Prometheus metrics snapshot to this file after the suite (\"-\" = stderr); with -server, scrapes the daemon")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *peersFlag != "" {
		if *server != "" || *cache || *cacheDir != "" || *bench != "" {
			return fmt.Errorf("-peers is incompatible with -server/-cache/-cache-dir/-bench: the coordinator computes nothing locally; caching and timing belong to the peers")
		}
		// With -metrics-out the coordinator's own registry is the
		// snapshot source: the rumor_shard_* families record how the
		// suite's cells spread (and failed over) across the cluster.
		var reg *obs.Registry
		if *metricsOut != "" {
			reg = obs.NewRegistry()
		}
		peerURLs, err := peerlist.ParseURLList(*peersFlag)
		if err != nil {
			return fmt.Errorf("-peers: %w", err)
		}
		remote, err := newPeersRunner(peerURLs, reg)
		if err != nil {
			return err
		}
		cfg := experiments.Config{
			Quick:  *quick,
			Seed:   *seed,
			Out:    stdout,
			Runner: remote,
		}
		suiteErr := runSuite(cfg, *runID, *markdown, stdout)
		if suiteErr != nil && !errors.Is(suiteErr, errVerdictFailed) {
			return suiteErr
		}
		if *metricsOut != "" {
			if err := writeMetricsSnapshot(*metricsOut, reg, nil); err != nil {
				return err
			}
		}
		return suiteErr
	}
	if *server != "" {
		if *cache || *cacheDir != "" || *bench != "" {
			return fmt.Errorf("-server is incompatible with -cache/-cache-dir/-bench: caching and timing belong to the daemon")
		}
		remote, err := newServerRunner(*server)
		if err != nil {
			return err
		}
		cfg := experiments.Config{
			Quick:  *quick,
			Seed:   *seed,
			Out:    stdout,
			Runner: remote,
		}
		suiteErr := runSuite(cfg, *runID, *markdown, stdout)
		if suiteErr != nil && !errors.Is(suiteErr, errVerdictFailed) {
			return suiteErr
		}
		if *metricsOut != "" {
			if err := writeMetricsSnapshot(*metricsOut, nil, remote); err != nil {
				return err
			}
		}
		return suiteErr
	}
	// A suite run with -metrics-out carries the same instruments the
	// rumord daemon exports, so an experiment batch leaves behind a
	// scrape-compatible record of its cell latencies and cache traffic.
	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.NewRegistry()
	}
	// -cache-dir supplies its own tiered result cache below, so only
	// -cache/-bench ask NewLocalRunner for the plain LRU tier.
	runner := experiments.NewLocalRunner(*workers, *cache || *bench != "")
	if reg != nil {
		runner.Obs = service.NewObservability(reg, nil)
	}
	if *cacheDir != "" {
		store, err := cachestore.Open(cachestore.Options{
			Dir:            *cacheDir,
			KeyVersion:     service.CellKeyVersion,
			CompatVersions: service.CellKeyCompatVersions(),
		})
		if err != nil {
			return fmt.Errorf("opening cache store: %w", err)
		}
		runner.Results = service.NewTieredResultCache(service.NewResultCache(0), store)
		// Close flushes the write-behind queue: everything this run
		// computed must be durable before the process exits, or the
		// next run recomputes it.
		defer store.Close()
	}
	cfg := experiments.Config{
		Quick:   *quick,
		Seed:    *seed,
		Workers: *workers,
		Out:     stdout,
		Runner:  runner,
	}
	var suiteErr error
	if *bench != "" {
		suiteErr = runBench(*bench, cfg, *benchLarge, stdout)
	} else {
		suiteErr = runSuite(cfg, *runID, *markdown, stdout)
	}
	if suiteErr != nil && !errors.Is(suiteErr, errVerdictFailed) {
		return suiteErr
	}
	// A FAILED verdict is still a completed suite: the snapshot (with
	// its error counters) is most useful exactly then.
	if *metricsOut != "" {
		if err := writeMetricsSnapshot(*metricsOut, reg, nil); err != nil {
			return err
		}
	}
	return suiteErr
}

// writeMetricsSnapshot dumps a Prometheus text snapshot after the
// suite: the local registry's state, or — when the cells ran on a
// daemon — a scrape of its /metrics. path "-" writes to stderr (stdout
// carries the verdict report).
func writeMetricsSnapshot(path string, reg *obs.Registry, runner service.CellRunner) error {
	var data []byte
	if reg != nil {
		var buf strings.Builder
		if err := reg.WriteText(&buf); err != nil {
			return err
		}
		data = []byte(buf.String())
	} else {
		c, ok := runner.(*client.Client)
		if !ok {
			return fmt.Errorf("-metrics-out: no metrics source for this runner")
		}
		var err error
		data, err = c.PromMetricsText(context.Background())
		if err != nil {
			return fmt.Errorf("-metrics-out: scraping daemon: %w", err)
		}
	}
	if path == "-" {
		_, err := os.Stderr.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// runSuite runs one experiment (runID != "") or the whole suite on
// cfg's runner — in-process or SDK-backed, the output is the same
// bytes.
func runSuite(cfg experiments.Config, runID, markdown string, stdout io.Writer) error {
	if runID != "" {
		e, err := experiments.ByID(runID)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "=== %s: %s ===\n%s\n\n", e.ID, e.Title, e.Claim)
		o, err := e.Run(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s verdict: %v — %s\n", o.ID, o.Verdict, o.Summary)
		if o.Verdict == experiments.Failed {
			return errVerdictFailed
		}
		return nil
	}
	outcomes, err := experiments.RunAll(cfg)
	if err != nil {
		return err
	}
	if markdown != "" {
		f, err := os.Create(markdown)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := experiments.WriteMarkdownReport(f, outcomes, cfg, time.Now()); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", markdown)
	}
	for _, o := range outcomes {
		if o.Verdict == experiments.Failed {
			return errVerdictFailed
		}
	}
	return nil
}

// benchReport is the schema of the -bench output (BENCH_3.json): the
// wall time of one full suite run against a cold result cache and one
// against the warm cache left by the first, with the cache counters, a
// verdict-equality check (warm results must be byte-identical — the
// caches only change speed), the cold run's engine throughput, and —
// with -bench-large — single-cell timings at 10^6 and 10^7 nodes.
type benchReport struct {
	Benchmark         string             `json:"benchmark"`
	Mode              string             `json:"mode"`
	Seed              uint64             `json:"seed"`
	Experiments       int                `json:"experiments"`
	Cells             int                `json:"cells"`
	ColdSeconds       float64            `json:"cold_seconds"`
	WarmSeconds       float64            `json:"warm_seconds"`
	Speedup           float64            `json:"speedup"`
	ColdCellsPerSec   float64            `json:"cold_cells_per_sec"`
	EngineUpdates     int64              `json:"engine_node_updates"`
	UpdatesPerSec     float64            `json:"node_updates_per_sec"`
	VerdictsIdentical bool               `json:"verdicts_identical"`
	ResultCache       service.CacheStats `json:"result_cache"`
	GraphCache        service.CacheStats `json:"graph_cache"`
	LargeN            []largeNTiming     `json:"large_n,omitempty"`
	GeneratedAt       string             `json:"generated_at"`
}

// largeNTiming times one synchronous push-pull cell on a large G(n,p)
// graph: streamed CSR construction, then a full spread from node 0.
type largeNTiming struct {
	N             int     `json:"n"`
	M             int     `json:"m"`
	Graph         string  `json:"graph"`
	BuildSeconds  float64 `json:"build_seconds"`
	RunSeconds    float64 `json:"run_seconds"`
	Rounds        int     `json:"rounds"`
	Updates       int64   `json:"updates"`
	UpdatesPerSec float64 `json:"updates_per_sec"`
}

func runBench(path string, cfg experiments.Config, large bool, stdout io.Writer) error {
	runner, ok := cfg.Runner.(*service.Executor)
	if !ok || runner.Results == nil {
		runner = experiments.NewLocalRunner(cfg.Workers, true)
		cfg.Runner = runner
	}
	cfg.Out = io.Discard

	cells := 0
	for _, e := range experiments.All() {
		cells += len(e.Cells(cfg))
	}

	start := time.Now()
	cold, err := experiments.RunAll(cfg)
	if err != nil {
		return err
	}
	coldDur := time.Since(start)
	coldUpdates := runner.EngineUpdates()

	start = time.Now()
	warm, err := experiments.RunAll(cfg)
	if err != nil {
		return err
	}
	warmDur := time.Since(start)

	identical := len(cold) == len(warm)
	for i := range cold {
		if !identical {
			break
		}
		identical = cold[i].Verdict == warm[i].Verdict && cold[i].Summary == warm[i].Summary &&
			cold[i].Details == warm[i].Details
	}

	mode := "full"
	if cfg.Quick {
		mode = "quick"
	}
	report := benchReport{
		Benchmark:         "experiment-suite-warm-vs-cold",
		Mode:              mode,
		Seed:              cfg.Seed,
		Experiments:       len(experiments.All()),
		Cells:             cells,
		ColdSeconds:       coldDur.Seconds(),
		WarmSeconds:       warmDur.Seconds(),
		Speedup:           coldDur.Seconds() / warmDur.Seconds(),
		ColdCellsPerSec:   float64(cells) / coldDur.Seconds(),
		EngineUpdates:     coldUpdates,
		UpdatesPerSec:     float64(coldUpdates) / coldDur.Seconds(),
		VerdictsIdentical: identical,
		ResultCache:       runner.Results.Stats(),
		GraphCache:        runner.Graphs.Stats(),
		GeneratedAt:       time.Now().UTC().Format(time.RFC3339),
	}
	if large {
		for _, n := range []int{1_000_000, 10_000_000} {
			timing, err := timeLargeCell(n, stdout)
			if err != nil {
				return err
			}
			report.LargeN = append(report.LargeN, timing)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "suite (%s): cold %.2fs (%.0f cells/sec, %.2gM updates/sec), warm %.2fs (%.1fx), verdicts identical: %v; wrote %s\n",
		mode, report.ColdSeconds, report.ColdCellsPerSec, report.UpdatesPerSec/1e6,
		report.WarmSeconds, report.Speedup, identical, path)
	if !identical {
		return fmt.Errorf("warm-cache suite run diverged from cold run (determinism violation)")
	}
	return nil
}

// timeLargeCell builds a mean-degree-20 G(n,p) graph with the streamed
// CSR builder and times one synchronous push-pull spread on it — the
// scale check behind the repo's "10^7 nodes on one machine" claim.
func timeLargeCell(n int, stdout io.Writer) (largeNTiming, error) {
	p := 20.0 / float64(n)
	start := time.Now()
	g, err := graph.GNP(n, p, xrand.New(7))
	if err != nil {
		return largeNTiming{}, err
	}
	buildDur := time.Since(start)
	start = time.Now()
	res, err := core.RunSync(g, 0, core.SyncConfig{Protocol: core.PushPull}, xrand.New(42))
	if err != nil {
		return largeNTiming{}, err
	}
	runDur := time.Since(start)
	t := largeNTiming{
		N:             g.NumNodes(),
		M:             g.NumEdges(),
		Graph:         g.Name(),
		BuildSeconds:  buildDur.Seconds(),
		RunSeconds:    runDur.Seconds(),
		Rounds:        res.Rounds,
		Updates:       res.Updates,
		UpdatesPerSec: float64(res.Updates) / runDur.Seconds(),
	}
	fmt.Fprintf(stdout, "large-n: %s built in %.1fs, spread in %d rounds / %.1fs (%.2gM updates/sec)\n",
		g.Name(), t.BuildSeconds, t.Rounds, t.RunSeconds, t.UpdatesPerSec/1e6)
	return t, nil
}
