package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	neturl "net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rumor/client"
	"rumor/client/clienttest"
	"rumor/internal/experiments"
	"rumor/internal/obs"
	"rumor/internal/service"
	"rumor/internal/shard"
)

func TestRunSingleQuickExperiment(t *testing.T) {
	// E12 is the cheapest self-contained experiment.
	if err := run([]string{"-run", "E12", "-quick"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "E99"}, io.Discard); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}, io.Discard); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunBenchWritesReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick suite twice")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	if err := run([]string{"-quick", "-bench", path}, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Benchmark         string  `json:"benchmark"`
		Cells             int     `json:"cells"`
		ColdSeconds       float64 `json:"cold_seconds"`
		WarmSeconds       float64 `json:"warm_seconds"`
		VerdictsIdentical bool    `json:"verdicts_identical"`
		ResultCache       struct {
			Hits uint64 `json:"hits"`
		} `json:"result_cache"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatal(err)
	}
	if report.Cells == 0 || report.ColdSeconds <= 0 || report.WarmSeconds <= 0 {
		t.Fatalf("degenerate bench report: %+v", report)
	}
	if !report.VerdictsIdentical {
		t.Fatal("warm-cache run diverged from cold run")
	}
	if report.ResultCache.Hits == 0 {
		t.Fatal("warm run produced no cache hits")
	}
}

// TestCacheDirSurvivesRestart is the persistent-cache acceptance
// check at single-experiment scale: the second run() call builds a
// fresh process state (new LRU, new store handle) over the same
// directory, replays every cell from disk, and prints byte-identical
// output.
func TestCacheDirSurvivesRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	var first, second bytes.Buffer
	if err := run([]string{"-run", "E12", "-quick", "-cache-dir", dir}, &first); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.ndjson"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segment files written to -cache-dir: %v, %v", segs, err)
	}
	if err := run([]string{"-run", "E12", "-quick", "-cache-dir", dir}, &second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Errorf("restarted warm run diverged from cold run\ncold:\n%s\nwarm:\n%s", first.String(), second.String())
	}
}

// TestQuickSuiteCacheDirRestart runs the full quick suite twice over
// one -cache-dir: the second run must replay warm from disk after the
// simulated process restart, with byte-identical verdict rows.
func TestQuickSuiteCacheDirRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick suite twice")
	}
	dir := filepath.Join(t.TempDir(), "cache")
	var cold, warm bytes.Buffer
	start := time.Now()
	if err := run([]string{"-quick", "-cache-dir", dir}, &cold); err != nil {
		t.Fatal(err)
	}
	coldDur := time.Since(start)
	start = time.Now()
	if err := run([]string{"-quick", "-cache-dir", dir}, &warm); err != nil {
		t.Fatal(err)
	}
	warmDur := time.Since(start)
	if cold.String() != warm.String() {
		t.Error("warm-from-disk suite output diverged from cold run")
	}
	t.Logf("cold %v, warm-from-disk %v", coldDur, warmDur)
	if warmDur > coldDur {
		t.Errorf("warm replay (%v) slower than cold run (%v)", warmDur, coldDur)
	}
}

func TestRunQuickSuiteWithMarkdownReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick suite")
	}
	dir := t.TempDir()
	md := filepath.Join(dir, "report.md")
	if err := run([]string{"-quick", "-md", md}, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(md)
	if err != nil {
		t.Fatal(err)
	}
	report := string(data)
	for _, want := range []string{"# Experiment report", "Mode: quick", "| E1 |", "| E15 |"} {
		if !strings.Contains(report, want) {
			t.Errorf("markdown report missing %q", want)
		}
	}
}

// startSuiteServer spins up the full rumord HTTP surface (jobs +
// experiment endpoints) in-process for -server tests.
func startSuiteServer(t *testing.T) string {
	t.Helper()
	sched := service.NewScheduler(service.SchedulerConfig{
		Workers: 4,
		Results: service.NewResultCache(0),
		Graphs:  service.NewGraphCache(0),
	})
	srv := service.NewServer(sched)
	experiments.Mount(srv, sched)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		sched.Shutdown(context.Background())
	})
	return ts.URL
}

// TestServerModeSingleExperiment: the cheap smoke — one experiment via
// -server matches the in-process run byte for byte.
func TestServerModeSingleExperiment(t *testing.T) {
	url := startSuiteServer(t)
	var local, remote bytes.Buffer
	if err := run([]string{"-run", "E12", "-quick"}, &local); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-run", "E12", "-quick", "-server", url}, &remote); err != nil {
		t.Fatal(err)
	}
	if local.String() != remote.String() {
		t.Errorf("-server output diverged\nlocal:\n%s\nremote:\n%s", local.String(), remote.String())
	}
}

func TestServerModeFlagConflicts(t *testing.T) {
	for _, args := range [][]string{
		{"-server", "http://localhost:1", "-cache"},
		{"-server", "http://localhost:1", "-cache-dir", "/tmp/x"},
		{"-server", "http://localhost:1", "-bench", "/tmp/b.json"},
		{"-server", "://bad"},
	} {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestServerModeSuiteMatchesLocalWithReconnect is the acceptance check
// of the SDK spine: `experiments -quick -server URL` reproduces the
// E1–E15 suite verdicts byte-identical to the in-process path, even
// when one result stream is force-cut mid-suite — the SDK reconnects
// with a cursor and no cell is recomputed or dropped.
func TestServerModeSuiteMatchesLocalWithReconnect(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick suite twice")
	}
	url := startSuiteServer(t)

	// Swap the runner hook for a client whose transport cuts the first
	// results stream after 900 bytes (mid-row, mid-suite).
	cut := &clienttest.CutOnceTransport{Match: "/results", After: 900}
	old := newServerRunner
	newServerRunner = func(baseURL string) (service.CellRunner, error) {
		return client.New(baseURL,
			client.WithHTTPClient(&http.Client{Transport: cut}),
			client.WithBackoff(time.Millisecond, 50*time.Millisecond))
	}
	t.Cleanup(func() { newServerRunner = old })

	var local, remote bytes.Buffer
	if err := run([]string{"-quick"}, &local); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-quick", "-server", url}, &remote); err != nil {
		t.Fatal(err)
	}
	if cut.Cuts() != 1 {
		t.Fatalf("transport cut %d streams, want exactly 1", cut.Cuts())
	}
	if local.String() != remote.String() {
		t.Errorf("-server suite output diverged from in-process run after forced reconnect")
	}
}

// startSuiteCluster spins up n independent rumord surfaces for -peers
// tests and returns their base URLs.
func startSuiteCluster(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		urls[i] = startSuiteServer(t)
	}
	return urls
}

// TestPeersModeSingleExperiment: one experiment sharded over two peers
// matches the in-process run byte for byte, and -metrics-out dumps the
// coordinator's rumor_shard_* families.
func TestPeersModeSingleExperiment(t *testing.T) {
	urls := startSuiteCluster(t, 2)
	snap := filepath.Join(t.TempDir(), "shard.prom")
	var local, remote bytes.Buffer
	if err := run([]string{"-run", "E12", "-quick"}, &local); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-run", "E12", "-quick",
		"-peers", strings.Join(urls, ","), "-metrics-out", snap}, &remote); err != nil {
		t.Fatal(err)
	}
	if local.String() != remote.String() {
		t.Errorf("-peers output diverged\nlocal:\n%s\nsharded:\n%s", local.String(), remote.String())
	}
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"rumor_shard_peers 2", "rumor_shard_cells_total"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("metrics snapshot missing %q", want)
		}
	}
}

func TestPeersModeFlagConflicts(t *testing.T) {
	for _, args := range [][]string{
		{"-peers", "http://localhost:1", "-server", "http://localhost:2"},
		{"-peers", "http://localhost:1", "-cache"},
		{"-peers", "http://localhost:1", "-cache-dir", "/tmp/x"},
		{"-peers", "http://localhost:1", "-bench", "/tmp/b.json"},
		{"-peers", " , "},
	} {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestPeersModeSuiteSurvivesPeerKill is the churn acceptance check at
// suite scale: the quick E1–E15 suite shards over three peers, one peer
// is killed mid-suite (stream cut, then every request refused), and the
// suite still finishes with output byte-identical to the in-process
// run — the coordinator reassigns the dead peer's cells to survivors.
func TestPeersModeSuiteSurvivesPeerKill(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick suite twice")
	}
	urls := startSuiteCluster(t, 3)
	victim, err := neturl.Parse(urls[0])
	if err != nil {
		t.Fatal(err)
	}
	kill := &clienttest.PeerDownTransport{Host: victim.Host, Match: "/results", After: 900}
	old := newPeersRunner
	newPeersRunner = func(peers []string, reg *obs.Registry) (service.CellRunner, error) {
		cfg := shard.Config{
			Peers: peers,
			ClientOptions: []client.Option{
				client.WithHTTPClient(&http.Client{Transport: kill}),
				client.WithRetries(2),
				client.WithBackoff(time.Millisecond, 5*time.Millisecond),
			},
		}
		if reg != nil {
			cfg.Metrics = shard.NewMetrics(reg)
		}
		return shard.New(cfg)
	}
	t.Cleanup(func() { newPeersRunner = old })

	var local, remote bytes.Buffer
	if err := run([]string{"-quick"}, &local); err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(t.TempDir(), "shard.prom")
	if err := run([]string{"-quick", "-peers", strings.Join(urls, ","), "-metrics-out", snap}, &remote); err != nil {
		t.Fatalf("sharded suite did not survive the peer kill: %v", err)
	}
	if !kill.Down() {
		t.Fatal("the victim peer was never killed: the fixture did not engage")
	}
	if local.String() != remote.String() {
		t.Errorf("-peers suite output diverged from in-process run after a peer kill")
	}
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "rumor_shard_reassignments_total") ||
		strings.Contains(string(data), "rumor_shard_reassignments_total 0\n") {
		t.Error("metrics snapshot records no reassignments after the kill")
	}
}
