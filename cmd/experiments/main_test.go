package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRunSingleQuickExperiment(t *testing.T) {
	// E12 is the cheapest self-contained experiment.
	if err := run([]string{"-run", "E12", "-quick"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "E99"}, io.Discard); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}, io.Discard); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunBenchWritesReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick suite twice")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	if err := run([]string{"-quick", "-bench", path}, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Benchmark         string  `json:"benchmark"`
		Cells             int     `json:"cells"`
		ColdSeconds       float64 `json:"cold_seconds"`
		WarmSeconds       float64 `json:"warm_seconds"`
		VerdictsIdentical bool    `json:"verdicts_identical"`
		ResultCache       struct {
			Hits uint64 `json:"hits"`
		} `json:"result_cache"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatal(err)
	}
	if report.Cells == 0 || report.ColdSeconds <= 0 || report.WarmSeconds <= 0 {
		t.Fatalf("degenerate bench report: %+v", report)
	}
	if !report.VerdictsIdentical {
		t.Fatal("warm-cache run diverged from cold run")
	}
	if report.ResultCache.Hits == 0 {
		t.Fatal("warm run produced no cache hits")
	}
}

// TestCacheDirSurvivesRestart is the persistent-cache acceptance
// check at single-experiment scale: the second run() call builds a
// fresh process state (new LRU, new store handle) over the same
// directory, replays every cell from disk, and prints byte-identical
// output.
func TestCacheDirSurvivesRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	var first, second bytes.Buffer
	if err := run([]string{"-run", "E12", "-quick", "-cache-dir", dir}, &first); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.ndjson"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segment files written to -cache-dir: %v, %v", segs, err)
	}
	if err := run([]string{"-run", "E12", "-quick", "-cache-dir", dir}, &second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Errorf("restarted warm run diverged from cold run\ncold:\n%s\nwarm:\n%s", first.String(), second.String())
	}
}

// TestQuickSuiteCacheDirRestart runs the full quick suite twice over
// one -cache-dir: the second run must replay warm from disk after the
// simulated process restart, with byte-identical verdict rows.
func TestQuickSuiteCacheDirRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick suite twice")
	}
	dir := filepath.Join(t.TempDir(), "cache")
	var cold, warm bytes.Buffer
	start := time.Now()
	if err := run([]string{"-quick", "-cache-dir", dir}, &cold); err != nil {
		t.Fatal(err)
	}
	coldDur := time.Since(start)
	start = time.Now()
	if err := run([]string{"-quick", "-cache-dir", dir}, &warm); err != nil {
		t.Fatal(err)
	}
	warmDur := time.Since(start)
	if cold.String() != warm.String() {
		t.Error("warm-from-disk suite output diverged from cold run")
	}
	t.Logf("cold %v, warm-from-disk %v", coldDur, warmDur)
	if warmDur > coldDur {
		t.Errorf("warm replay (%v) slower than cold run (%v)", warmDur, coldDur)
	}
}

func TestRunQuickSuiteWithMarkdownReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick suite")
	}
	dir := t.TempDir()
	md := filepath.Join(dir, "report.md")
	if err := run([]string{"-quick", "-md", md}, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(md)
	if err != nil {
		t.Fatal(err)
	}
	report := string(data)
	for _, want := range []string{"# Experiment report", "Mode: quick", "| E1 |", "| E15 |"} {
		if !strings.Contains(report, want) {
			t.Errorf("markdown report missing %q", want)
		}
	}
}
