package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleQuickExperiment(t *testing.T) {
	// E12 is the cheapest self-contained experiment.
	if err := run([]string{"-run", "E12", "-quick"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "E99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunQuickSuiteWithMarkdownReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick suite")
	}
	dir := t.TempDir()
	md := filepath.Join(dir, "report.md")
	if err := run([]string{"-quick", "-md", md}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(md)
	if err != nil {
		t.Fatal(err)
	}
	report := string(data)
	for _, want := range []string{"# Experiment report", "Mode: quick", "| E1 |", "| E15 |"} {
		if !strings.Contains(report, want) {
			t.Errorf("markdown report missing %q", want)
		}
	}
}
