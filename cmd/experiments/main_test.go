package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleQuickExperiment(t *testing.T) {
	// E12 is the cheapest self-contained experiment.
	if err := run([]string{"-run", "E12", "-quick"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "E99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunBenchWritesReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick suite twice")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	if err := run([]string{"-quick", "-bench", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Benchmark         string  `json:"benchmark"`
		Cells             int     `json:"cells"`
		ColdSeconds       float64 `json:"cold_seconds"`
		WarmSeconds       float64 `json:"warm_seconds"`
		VerdictsIdentical bool    `json:"verdicts_identical"`
		ResultCache       struct {
			Hits uint64 `json:"hits"`
		} `json:"result_cache"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatal(err)
	}
	if report.Cells == 0 || report.ColdSeconds <= 0 || report.WarmSeconds <= 0 {
		t.Fatalf("degenerate bench report: %+v", report)
	}
	if !report.VerdictsIdentical {
		t.Fatal("warm-cache run diverged from cold run")
	}
	if report.ResultCache.Hits == 0 {
		t.Fatal("warm run produced no cache hits")
	}
}

func TestRunQuickSuiteWithMarkdownReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick suite")
	}
	dir := t.TempDir()
	md := filepath.Join(dir, "report.md")
	if err := run([]string{"-quick", "-md", md}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(md)
	if err != nil {
		t.Fatal(err)
	}
	report := string(data)
	for _, want := range []string{"# Experiment report", "Mode: quick", "| E1 |", "| E15 |"} {
		if !strings.Contains(report, want) {
			t.Errorf("markdown report missing %q", want)
		}
	}
}
