// Command gossipd runs the live gossip cluster.
//
// Node mode (default) hosts one gossip node: a TCP listener whose
// dispatcher speaks the push/pull gossip plane and the coordinator's
// control plane. A fleet of gossipd processes plus one coordinator is
// a real cluster:
//
//	gossipd -addr 127.0.0.1:7946 -exit-on-shutdown
//
// Coordinator mode (-coordinator) stands a cluster up — self-hosted
// loopback nodes by default, or already-running gossipd processes via
// -peers — runs live trials of a (family, protocol, timing) cell, and
// with -overlay (the default) closes the loop against the simulator:
// the identical cell runs on the service executor and the two
// normalized coverage curves are compared, with the spreading-time
// ratio as the headline (experiment E16).
//
//	gossipd -coordinator -family complete -n 16 -protocol push-pull -timing sync -loss 0.1
//	gossipd -coordinator -peers 127.0.0.1:7946,127.0.0.1:7947 -family cycle -n 2
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"rumor/internal/gossip"
	"rumor/internal/harness"
	"rumor/internal/obs"
	"rumor/internal/peers"
	"rumor/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gossipd:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("gossipd", flag.ContinueOnError)
	var (
		coordinator = fs.Bool("coordinator", false, "run the trial coordinator instead of one node")

		// Node mode.
		addr     = fs.String("addr", "127.0.0.1:0", "node mode: TCP listen address")
		exitShut = fs.Bool("exit-on-shutdown", false, "node mode: exit the process after a SHUTDOWN message")

		// Coordinator mode: cluster shape.
		nodes    = fs.Int("nodes", 0, "coordinator: self-host this many loopback nodes (0 = size to the graph)")
		peerList = fs.String("peers", "", "coordinator: comma-separated gossipd node addresses (host:port); empty = self-host")

		// Coordinator mode: the cell.
		family    = fs.String("family", "complete", "graph family: "+strings.Join(harness.FamilyNames(), ", "))
		n         = fs.Int("n", 16, "target graph size")
		protocol  = fs.String("protocol", "push-pull", "protocol: push, pull, push-pull")
		timing    = fs.String("timing", "sync", "timing model: sync, async")
		loss      = fs.Float64("loss", 0, "per-transmission loss probability in [0, 1)")
		threshold = fs.Int("threshold", 0, "counter-based acceptance: accept after this many hearings (0/1 = immediate)")
		latency   = fs.String("latency", "", "per-link latency: fixed:5ms, exp:10ms, uniform:2ms (empty = none)")
		seed      = fs.Uint64("seed", 1, "root RNG seed (graph and trials)")
		source    = fs.Int("source", 0, "rumor source vertex")
		timeUnit  = fs.Duration("time-unit", gossip.DefaultTimeUnit, "async: wall-clock length of one protocol time unit")
		maxRounds = fs.Int("max-rounds", gossip.DefaultMaxRounds, "sync: round cap per trial")
		maxWait   = fs.Duration("max-wait", gossip.DefaultMaxWait, "async: wall-clock cap per trial")

		// Coordinator mode: the run.
		trials     = fs.Int("trials", 3, "live trials")
		simTrials  = fs.Int("sim-trials", 5, "simulator trials for the overlay")
		overlay    = fs.Bool("overlay", true, "run the E16 overlay (live vs simulator); false = live trials only")
		maxRatio   = fs.Float64("max-ratio", 0, "fail (exit 1) if the overlay ratio is not in (0, max-ratio]; 0 disables")
		jsonOut    = fs.Bool("json", false, "emit JSON instead of text")
		metricsOut = fs.String("metrics-out", "", "write a Prometheus metrics snapshot to this file (\"-\" = stderr)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	reg := obs.NewRegistry()
	metrics := gossip.NewMetrics(reg)
	defer func() {
		if *metricsOut != "" {
			writeMetrics(reg, *metricsOut)
		}
	}()

	if !*coordinator {
		return runNode(*addr, *exitShut, metrics, stdout)
	}

	lat, err := gossip.ParseLatency(*latency)
	if err != nil {
		return err
	}
	spec := gossip.TrialSpec{
		Cell: service.CellSpec{
			Family:    *family,
			N:         *n,
			Protocol:  *protocol,
			Timing:    *timing,
			LossProb:  *loss,
			Trials:    *simTrials,
			GraphSeed: *seed,
			TrialSeed: *seed + 1,
			Source:    *source,
		},
		Threshold: *threshold,
		TimeUnit:  *timeUnit,
		Latency:   lat,
		MaxRounds: *maxRounds,
		MaxWait:   *maxWait,
	}

	g, err := service.BuildGraph(spec.Cell)
	if err != nil {
		return err
	}
	cluster, err := buildCluster(*peerList, *nodes, g.NumNodes(), metrics)
	if err != nil {
		return err
	}
	defer cluster.Close()
	if err := cluster.Ping(); err != nil {
		return fmt.Errorf("cluster ping: %w", err)
	}

	if !*overlay {
		return runLiveOnly(cluster, spec, *trials, *jsonOut, stdout)
	}

	res, err := gossip.RunOverlay(cluster, gossip.OverlayConfig{Spec: spec, LiveTrials: *trials})
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return err
		}
	} else if err := res.RenderText(stdout); err != nil {
		return err
	}
	if *maxRatio > 0 {
		if res.Ratio <= 0 {
			return fmt.Errorf("overlay ratio unavailable (incomplete coverage: %d live trials short)", res.LiveIncomplete)
		}
		if res.Ratio > *maxRatio {
			return fmt.Errorf("overlay ratio %.3f exceeds -max-ratio %.3f", res.Ratio, *maxRatio)
		}
	}
	return nil
}

// runNode hosts one gossip node until SIGINT/SIGTERM (or a SHUTDOWN
// message with -exit-on-shutdown).
func runNode(addr string, exitShut bool, metrics *gossip.Metrics, stdout io.Writer) error {
	node := gossip.NewNode(metrics)
	done := make(chan os.Signal, 1)
	signal.Notify(done, os.Interrupt, syscall.SIGTERM)
	if exitShut {
		node.OnShutdown(func() {
			select {
			case done <- syscall.SIGTERM:
			default:
			}
		})
	}
	if err := node.Listen(addr); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "gossipd node listening on %s\n", node.Addr())
	<-done
	return node.Close()
}

// buildCluster self-hosts loopback nodes or attaches to remote ones.
func buildCluster(peerList string, nodes, graphN int, metrics *gossip.Metrics) (*gossip.Cluster, error) {
	if peerList != "" {
		if nodes != 0 {
			return nil, fmt.Errorf("-nodes and -peers are mutually exclusive")
		}
		addrs, err := peers.ParseAddrList(peerList)
		if err != nil {
			return nil, fmt.Errorf("-peers: %w", err)
		}
		if len(addrs) != graphN {
			return nil, fmt.Errorf("-peers lists %d nodes, graph has %d", len(addrs), graphN)
		}
		return gossip.Attach(addrs, metrics)
	}
	size := nodes
	if size == 0 {
		size = graphN
	}
	if size != graphN {
		return nil, fmt.Errorf("-nodes=%d does not match the built graph's %d vertices", size, graphN)
	}
	return gossip.NewSelfHost(size, metrics)
}

// runLiveOnly runs live trials without the simulator comparison.
func runLiveOnly(cluster *gossip.Cluster, spec gossip.TrialSpec, trials int, jsonOut bool, stdout io.Writer) error {
	for t := 0; t < trials; t++ {
		trial := spec
		trial.Cell.TrialSeed = spec.Cell.TrialSeed + uint64(t)*0x9E3779B97F4A7C15
		res, err := cluster.RunTrial(trial)
		if err != nil {
			return fmt.Errorf("trial %d: %w", t, err)
		}
		if jsonOut {
			res.Reports = nil // per-node detail is overlay/debug fare
			if err := json.NewEncoder(stdout).Encode(res); err != nil {
				return err
			}
			continue
		}
		fmt.Fprintf(stdout, "trial %d: %s informed=%d/%d spread=%s rounds=%d wall=%s sent=%d dropped=%d\n",
			t, res.Graph, res.Informed, res.N, fmtSpread(res.SpreadTime), res.Rounds, res.Wall.Round(timeRounding), res.Sent, res.Dropped)
	}
	return nil
}

const timeRounding = 1e6 // 1ms, as a time.Duration

func fmtSpread(v float64) string {
	if v < 0 {
		return "incomplete"
	}
	return fmt.Sprintf("%.3f", v)
}

// writeMetrics dumps the registry in Prometheus text format.
func writeMetrics(reg *obs.Registry, path string) {
	var w io.Writer = os.Stderr
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gossipd: metrics-out:", err)
			return
		}
		defer f.Close()
		w = f
	}
	if err := reg.WriteText(w); err != nil {
		fmt.Fprintln(os.Stderr, "gossipd: metrics-out:", err)
	}
}
