package main

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"rumor/internal/gossip"
)

func TestCoordinatorOverlaySelfHost(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-coordinator", "-family", "complete", "-n", "8",
		"-protocol", "push-pull", "-timing", "sync",
		"-trials", "1", "-sim-trials", "2", "-seed", "3",
		"-max-ratio", "25",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{"E16 overlay", "spreading-time ratio"} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}
}

func TestCoordinatorLiveOnly(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-coordinator", "-overlay=false", "-family", "cycle", "-n", "6",
		"-protocol", "push", "-timing", "sync", "-trials", "2", "-seed", "5",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "trial 1:") {
		t.Fatalf("output missing trial lines:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "informed=6/6") {
		t.Fatalf("cycle trial short of coverage:\n%s", out.String())
	}
}

func TestCoordinatorAttachesPeers(t *testing.T) {
	var addrs []string
	for i := 0; i < 4; i++ {
		node := gossip.NewNode(nil)
		if err := node.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		defer node.Close()
		addrs = append(addrs, node.Addr())
	}
	var out bytes.Buffer
	err := run([]string{
		"-coordinator", "-overlay=false", "-peers", strings.Join(addrs, ","),
		"-family", "complete", "-n", "4", "-trials", "1", "-seed", "9",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "informed=4/4") {
		t.Fatalf("attached trial short of coverage:\n%s", out.String())
	}
}

func TestFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-coordinator", "-peers", "a:1,,b:2", "-family", "complete", "-n", "2"},
		{"-coordinator", "-peers", "a:1,a:1", "-family", "complete", "-n", "2"},
		{"-coordinator", "-peers", "a:1,b:2,c:3", "-nodes", "3", "-family", "complete", "-n", "3"},
		{"-coordinator", "-peers", "a:1", "-family", "complete", "-n", "4"}, // size mismatch
		{"-coordinator", "-nodes", "3", "-family", "complete", "-n", "8"},   // size mismatch
		{"-coordinator", "-latency", "warp:1ms"},
		{"-coordinator", "-family", "klein-bottle", "-n", "8"},
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

// syncBuffer lets the node-mode goroutine write while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestNodeModeExitOnShutdown boots a node-mode process loop and tears
// it down through the wire protocol, the lifecycle a remote fleet
// uses.
func TestNodeModeExitOnShutdown(t *testing.T) {
	out := &syncBuffer{}
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"-addr", "127.0.0.1:0", "-exit-on-shutdown"}, out)
	}()

	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("node never announced its address; output: %q", out.String())
		}
		if text := out.String(); strings.Contains(text, "listening on ") {
			addr = strings.TrimSpace(strings.SplitN(text, "listening on ", 2)[1])
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}

	env, err := gossip.NewEnvelope(gossip.MethodShutdown, gossip.CoordinatorFrom, gossip.Ack{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gossip.CallChecked(addr, env, 2*time.Second, nil); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("node exit: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("node did not exit after SHUTDOWN")
	}
}
