// Command rumord serves rumor-spreading simulation jobs over HTTP: a
// bounded worker pool executes batches of simulation cells with
// deterministic seeding, a two-tier cache (cell results + constructed
// graphs) exploits the purity of every measurement, and results stream
// back as NDJSON while a job runs. The paper's E1–E15 experiment suite
// rides the same scheduler: each experiment runs as a job whose cells
// stream back followed by the experiment's verdict.
//
// Example session:
//
//	rumord -addr :8080 &
//	curl -s localhost:8080/v1/jobs -d '{
//	    "families": ["hypercube", "complete"], "sizes": [256, 1024],
//	    "protocols": ["push-pull"], "timings": ["sync", "async"],
//	    "trials": 100, "seed": 1}'
//	curl -s localhost:8080/v1/jobs/job-00000001
//	curl -sN localhost:8080/v1/jobs/job-00000001/results
//	curl -s localhost:8080/v1/experiments
//	curl -sN localhost:8080/v1/experiments/e11 -d '{"quick": true}'
//	curl -s localhost:8080/v1/cache
//	curl -s localhost:8080/metricsz
//
// With -cache-dir the completed-cell cache gains a persistent tier
// (internal/cachestore): results survive restarts, so a rebooted
// daemon replays previously computed cells from disk instead of
// recomputing them. GET /v1/cache reports the tier breakdown.
//
// SIGINT/SIGTERM drains gracefully: in-flight and queued cells finish
// (up to -drain-timeout), then the persistent tier is flushed and the
// process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rumor/internal/cachestore"
	"rumor/internal/experiments"
	"rumor/internal/service"
)

// onListen, when non-nil, receives the bound listen address (test hook
// for -addr :0).
var onListen func(net.Addr)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rumord:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rumord", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		workers      = fs.Int("workers", 0, "cell worker pool size (0 = all cores)")
		trialWorkers = fs.Int("trial-workers", 1, "per-cell trial parallelism")
		queueLimit   = fs.Int("queue", 4096, "max pending cells before submits are rejected")
		resultCap    = fs.Int("result-cache", 4096, "cell result LRU capacity (0 disables the tier)")
		graphCap     = fs.Int("graph-cache", 64, "constructed graph LRU capacity (0 disables the tier)")
		cacheDir     = fs.String("cache-dir", "", "persistent cell-result store directory (empty = in-memory only); results survive restarts")
		jobRetention = fs.Int("job-retention", 256, "terminal jobs kept for status/result queries")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "max time to drain on shutdown")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var results service.ResultStore
	var tiered *service.TieredResultCache
	if *resultCap > 0 {
		lru := service.NewResultCache(*resultCap)
		if *cacheDir != "" {
			store, err := cachestore.Open(cachestore.Options{
				Dir:        *cacheDir,
				KeyVersion: service.CellKeyVersion,
				Logf:       log.Printf,
			})
			if err != nil {
				return fmt.Errorf("opening cache store: %w", err)
			}
			st := store.Stats()
			log.Printf("rumord: cache store %s: %d records in %d segments (%d bytes)",
				*cacheDir, st.Records, st.Segments, st.Bytes)
			tiered = service.NewTieredResultCache(lru, store)
			// Close is idempotent; this backstop flushes the
			// write-behind queue even when run exits through a fatal
			// server error rather than the SIGTERM drain below.
			defer tiered.Close()
			results = tiered
		} else {
			results = lru
		}
	} else if *cacheDir != "" {
		return fmt.Errorf("-cache-dir needs the result-cache tier (set -result-cache > 0)")
	}
	var graphs *service.GraphCache
	if *graphCap > 0 {
		graphs = service.NewGraphCache(*graphCap)
	}
	sched := service.NewScheduler(service.SchedulerConfig{
		Workers:      *workers,
		QueueLimit:   *queueLimit,
		TrialWorkers: *trialWorkers,
		JobRetention: *jobRetention,
		Results:      results,
		Graphs:       graphs,
	})
	api := service.NewServer(sched)
	experiments.Mount(api, sched)
	srv := &http.Server{Addr: *addr, Handler: api}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	log.Printf("rumord: listening on %s", ln.Addr())
	if onListen != nil {
		onListen(ln.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	log.Printf("rumord: draining (timeout %s)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("rumord: http shutdown: %v", err)
	}
	if err := sched.Shutdown(drainCtx); err != nil {
		log.Printf("rumord: scheduler drain cut short: %v", err)
	} else {
		log.Printf("rumord: drained cleanly")
	}
	// Flush the persistent tier after the drain so every result the
	// drained cells produced is durable before the process exits.
	if tiered != nil {
		if err := tiered.Close(); err != nil {
			log.Printf("rumord: cache store close: %v", err)
		} else {
			log.Printf("rumord: cache store flushed")
		}
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
