// Command rumord serves rumor-spreading simulation jobs over HTTP: a
// bounded worker pool executes batches of simulation cells with
// deterministic seeding, a two-tier cache (cell results + constructed
// graphs) exploits the purity of every measurement, and results stream
// back as NDJSON while a job runs. The paper's E1–E15 experiment suite
// rides the same scheduler: each experiment runs as a job whose cells
// stream back followed by the experiment's verdict.
//
// Example session:
//
//	rumord -addr :8080 &
//	curl -s localhost:8080/v1/jobs -d '{
//	    "families": ["hypercube", "complete"], "sizes": [256, 1024],
//	    "protocols": ["push-pull"], "timings": ["sync", "async"],
//	    "trials": 100, "seed": 1}'
//	curl -s localhost:8080/v1/jobs/job-00000001
//	curl -sN localhost:8080/v1/jobs/job-00000001/results
//	curl -s localhost:8080/v1/experiments
//	curl -sN localhost:8080/v1/experiments/e11 -d '{"quick": true}'
//	curl -s localhost:8080/v1/cache
//	curl -s localhost:8080/metricsz
//	curl -s localhost:8080/metrics
//
// GET /metrics serves the Prometheus text exposition (latency
// histograms, per-route request counters, queue and cache series);
// /metricsz keeps the original JSON snapshot. -log-format=json|text
// selects the structured log encoding, and -pprof mounts
// net/http/pprof under /debug/pprof/ for live profiling.
//
// With -cache-dir the completed-cell cache gains a persistent tier
// (internal/cachestore): results survive restarts, so a rebooted
// daemon replays previously computed cells from disk instead of
// recomputing them. GET /v1/cache reports the tier breakdown.
//
// SIGINT/SIGTERM drains gracefully: in-flight and queued cells finish
// (up to -drain-timeout), then the persistent tier is flushed and the
// process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rumor/internal/cachestore"
	"rumor/internal/experiments"
	"rumor/internal/obs"
	peerlist "rumor/internal/peers"
	"rumor/internal/service"
	"rumor/internal/shard"
)

// onListen, when non-nil, receives the bound listen address (test hook
// for -addr :0).
var onListen func(net.Addr)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rumord:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rumord", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		workers      = fs.Int("workers", 0, "cell worker pool size (0 = all cores)")
		trialWorkers = fs.Int("trial-workers", 1, "per-cell trial parallelism")
		queueLimit   = fs.Int("queue", 4096, "max pending cells before submits are rejected")
		resultCap    = fs.Int("result-cache", 4096, "cell result LRU capacity (0 disables the tier)")
		graphCap     = fs.Int("graph-cache", 64, "constructed graph LRU capacity (0 disables the tier)")
		cacheDir     = fs.String("cache-dir", "", "persistent cell-result store directory (empty = in-memory only); results survive restarts")
		jobRetention = fs.Int("job-retention", 256, "terminal jobs kept for status/result queries")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "max time to drain on shutdown")
		logFormat    = fs.String("log-format", "text", "structured log format: json|text")
		logLevel     = fs.String("log-level", "info", "log level: debug|info|warn|error")
		pprofOn      = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		peers        = fs.String("peers", "", "comma-separated rumord peer base URLs (host:port ok); when set, this daemon coordinates: jobs shard over the peers by cell key instead of running locally")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	logger, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	observ := service.NewObservability(reg, logger)

	if *peers != "" {
		if *cacheDir != "" {
			return fmt.Errorf("-cache-dir is incompatible with -peers: a coordinator computes nothing locally, so the persistent tier belongs on the peers")
		}
		peerURLs, err := peerlist.ParseURLList(*peers)
		if err != nil {
			return fmt.Errorf("-peers: %w", err)
		}
		co, err := shard.New(shard.Config{
			Peers:   peerURLs,
			Metrics: shard.NewMetrics(reg),
			Log:     logger,
		})
		if err != nil {
			return err
		}
		logger.Info("coordinating over peers", "peers", co.Peers())
		sched := service.NewScheduler(service.SchedulerConfig{
			QueueLimit:   *queueLimit,
			JobRetention: *jobRetention,
			Obs:          observ,
			Remote:       co,
		})
		return serve(sched, nil, observ, logger, *addr, *pprofOn, *drainTimeout)
	}

	var results service.ResultStore
	var tiered *service.TieredResultCache
	if *resultCap > 0 {
		lru := service.NewResultCache(*resultCap)
		if *cacheDir != "" {
			store, err := cachestore.Open(cachestore.Options{
				Dir:            *cacheDir,
				KeyVersion:     service.CellKeyVersion,
				CompatVersions: service.CellKeyCompatVersions(),
				Logf: func(format string, args ...interface{}) {
					logger.Info(fmt.Sprintf(format, args...))
				},
				Metrics: cachestore.NewMetrics(reg),
			})
			if err != nil {
				return fmt.Errorf("opening cache store: %w", err)
			}
			st := store.Stats()
			logger.Info("cache store opened", "dir", *cacheDir,
				"records", st.Records, "segments", st.Segments, "bytes", st.Bytes)
			tiered = service.NewTieredResultCache(lru, store)
			// Close is idempotent; this backstop flushes the
			// write-behind queue even when run exits through a fatal
			// server error rather than the SIGTERM drain below.
			defer tiered.Close()
			results = tiered
		} else {
			results = lru
		}
	} else if *cacheDir != "" {
		return fmt.Errorf("-cache-dir needs the result-cache tier (set -result-cache > 0)")
	}
	var graphs *service.GraphCache
	if *graphCap > 0 {
		graphs = service.NewGraphCache(*graphCap)
	}
	sched := service.NewScheduler(service.SchedulerConfig{
		Workers:      *workers,
		QueueLimit:   *queueLimit,
		TrialWorkers: *trialWorkers,
		JobRetention: *jobRetention,
		Results:      results,
		Graphs:       graphs,
		Obs:          observ,
	})
	return serve(sched, tiered, observ, logger, *addr, *pprofOn, *drainTimeout)
}

// serve mounts the HTTP surface on sched and runs until SIGINT/SIGTERM
// drains it. tiered, when non-nil, is flushed after the drain. Both the
// compute mode and the -peers coordinator mode funnel through here: the
// surfaces are identical, only what is behind the scheduler differs.
func serve(sched *service.Scheduler, tiered *service.TieredResultCache, observ *service.Observability, logger *slog.Logger, addr string, pprofOn bool, drainTimeout time.Duration) error {
	api := service.NewServer(sched, service.WithObservability(observ))
	experiments.Mount(api, sched)
	handler := http.Handler(api)
	if pprofOn {
		// Explicit handler registrations rather than the package's
		// DefaultServeMux side effects, so profiling is opt-in and the
		// API mux stays authoritative for every other path.
		outer := http.NewServeMux()
		outer.HandleFunc("/debug/pprof/", pprof.Index)
		outer.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("/debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("/debug/pprof/trace", pprof.Trace)
		outer.Handle("/", api)
		handler = outer
	}
	srv := &http.Server{Addr: addr, Handler: handler}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	logger.Info("listening", "addr", ln.Addr().String(), "pprof", pprofOn)
	if onListen != nil {
		onListen(ln.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	logger.Info("draining", "timeout", drainTimeout.String())
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		logger.Warn("http shutdown", "error", err.Error())
	}
	if err := sched.Shutdown(drainCtx); err != nil {
		logger.Warn("scheduler drain cut short", "error", err.Error())
	} else {
		logger.Info("drained cleanly")
	}
	// Flush the persistent tier after the drain so every result the
	// drained cells produced is durable before the process exits.
	if tiered != nil {
		if err := tiered.Close(); err != nil {
			logger.Warn("cache store close", "error", err.Error())
		} else {
			logger.Info("cache store flushed")
		}
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
