package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"rumor/internal/service"
)

// startRumord launches run() with the given args plus an ephemeral
// port and returns the base URL and the exit-error channel.
func startRumord(t *testing.T, args ...string) (string, chan error) {
	t.Helper()
	addrCh := make(chan net.Addr, 1)
	onListen = func(a net.Addr) { addrCh <- a }
	t.Cleanup(func() { onListen = nil })
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(append([]string{"-addr", "127.0.0.1:0"}, args...))
	}()
	select {
	case addr := <-addrCh:
		return "http://" + addr.String(), errCh
	case err := <-errCh:
		t.Fatalf("rumord exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("rumord did not start listening")
	}
	return "", nil
}

// stopRumord SIGTERMs the process and waits for a clean drain.
func stopRumord(t *testing.T, errCh chan error) {
	t.Helper()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("rumord exited with error after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("rumord did not drain after SIGTERM")
	}
}

// getBody fetches a URL and returns the body.
func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// submitAndStream submits a job spec and returns the streamed NDJSON
// result bytes.
func submitAndStream(t *testing.T, base, spec string) []byte {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, %+v", resp.StatusCode, st)
	}
	return getBody(t, base+"/v1/jobs/"+st.ID+"/results")
}

// TestRumordCacheDirSurvivesRestart: a rumord with -cache-dir computes
// a job, drains on SIGTERM (flushing the persistent tier), and a fresh
// rumord over the same directory serves the same job byte-identically
// from disk — GET /v1/cache must report the disk-tier hits.
func TestRumordCacheDirSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	spec := `{"families":["hypercube"],"sizes":[64],` +
		`"protocols":["push-pull"],"timings":["sync","async"],"trials":10,"seed":7}`

	base, errCh := startRumord(t, "-workers", "2", "-cache-dir", dir)
	cold := submitAndStream(t, base, spec)
	stopRumord(t, errCh)

	base, errCh = startRumord(t, "-workers", "2", "-cache-dir", dir)
	warm := submitAndStream(t, base, spec)
	if !bytes.Equal(cold, warm) {
		t.Errorf("restarted daemon streamed different bytes\ncold: %s\nwarm: %s", cold, warm)
	}
	var snap service.CacheSnapshot
	if err := json.Unmarshal(getBody(t, base+"/v1/cache"), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.ResultCache == nil || snap.ResultCache.Disk == nil {
		t.Fatalf("/v1/cache missing tiered result stats: %+v", snap)
	}
	if snap.ResultCache.DiskHits == 0 {
		t.Errorf("restarted daemon served no disk-tier hits: %+v", snap.ResultCache)
	}
	if snap.ResultCache.Hits != snap.ResultCache.MemHits+snap.ResultCache.DiskHits {
		t.Errorf("torn tier counters: %+v", snap.ResultCache)
	}
	if snap.ResultCache.Disk.Records == 0 {
		t.Errorf("disk tier reports no records: %+v", snap.ResultCache.Disk)
	}
	stopRumord(t, errCh)
}

// End-to-end daemon lifecycle: rumord starts on an ephemeral port,
// accepts a job over HTTP, streams NDJSON results, and drains cleanly
// when the process receives SIGTERM.
func TestRumordServesAndDrainsOnSIGTERM(t *testing.T) {
	addrCh := make(chan net.Addr, 1)
	onListen = func(a net.Addr) { addrCh <- a }
	defer func() { onListen = nil }()

	errCh := make(chan error, 1)
	go func() {
		errCh <- run([]string{"-addr", "127.0.0.1:0", "-workers", "2", "-drain-timeout", "30s"})
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr.String()
	case err := <-errCh:
		t.Fatalf("rumord exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("rumord did not start listening")
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	spec := `{"families":["hypercube","complete"],"sizes":[64],` +
		`"protocols":["push-pull"],"timings":["sync","async"],"trials":10,"seed":3}`
	resp, err = http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || st.CellsTotal != 4 {
		t.Fatalf("submit: status %d, %+v", resp.StatusCode, st)
	}

	resp, err = http.Get(base + "/v1/jobs/" + st.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		var row service.CellResult
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("row %d: %v", rows, err)
		}
		rows++
	}
	resp.Body.Close()
	if rows != 4 {
		t.Fatalf("streamed %d rows, want 4", rows)
	}

	// Experiment endpoints: the registry lists E1–E15, and running one
	// (E12 is graphless and cheap) streams its cells plus a final
	// outcome row with a verdict.
	resp, err = http.Get(base + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	var infos []map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) != 15 {
		t.Fatalf("experiment registry lists %d entries, want 15", len(infos))
	}

	resp, err = http.Post(base+"/v1/experiments/e12", "application/json",
		strings.NewReader(`{"quick": true, "seed": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("experiment run status = %d", resp.StatusCode)
	}
	var lines []string
	sc = bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	resp.Body.Close()
	if len(lines) != 2 { // one cell + the outcome
		t.Fatalf("experiment stream has %d rows, want 2", len(lines))
	}
	var outcome struct {
		ID      string `json:"id"`
		Verdict string `json:"verdict"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &outcome); err != nil {
		t.Fatal(err)
	}
	if outcome.ID != "E12" || outcome.Verdict == "" || outcome.Verdict == "FAILED" {
		t.Fatalf("experiment outcome = %+v", outcome)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("rumord exited with error after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("rumord did not drain after SIGTERM")
	}
}
