package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"rumor/client"
	"rumor/client/clienttest"
	"rumor/internal/experiments"
	"rumor/internal/service"
)

// startRumord launches run() with the given args plus an ephemeral
// port and returns an SDK client for it and the exit-error channel.
// The daemon is driven exclusively through the typed client — the
// same path every other consumer in the repo uses.
func startRumord(t *testing.T, args ...string) (*client.Client, chan error) {
	t.Helper()
	addrCh := make(chan net.Addr, 1)
	onListen = func(a net.Addr) { addrCh <- a }
	t.Cleanup(func() { onListen = nil })
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(append([]string{"-addr", "127.0.0.1:0"}, args...))
	}()
	select {
	case addr := <-addrCh:
		c, err := client.New("http://" + addr.String())
		if err != nil {
			t.Fatal(err)
		}
		return c, errCh
	case err := <-errCh:
		t.Fatalf("rumord exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("rumord did not start listening")
	}
	return nil, nil
}

// stopRumord SIGTERMs the process and waits for a clean drain.
func stopRumord(t *testing.T, errCh chan error) {
	t.Helper()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("rumord exited with error after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("rumord did not drain after SIGTERM")
	}
}

// rawResults streams a job's results from after the given cursor and
// returns the raw NDJSON bytes — the unit of the byte-determinism
// guarantee.
func rawResults(t *testing.T, c *client.Client, id string, after int) []byte {
	t.Helper()
	stream, err := c.Results(context.Background(), id, after)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	var buf bytes.Buffer
	for {
		_, err := stream.Next()
		if err == io.EOF {
			return buf.Bytes()
		}
		if err != nil {
			t.Fatalf("stream error: %v", err)
		}
		buf.Write(stream.Raw())
		buf.WriteByte('\n')
	}
}

// submitAndStream submits a job spec through the SDK and returns the
// streamed NDJSON result bytes.
func submitAndStream(t *testing.T, c *client.Client, spec service.JobSpec) []byte {
	t.Helper()
	st, err := c.SubmitJob(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	return rawResults(t, c, st.ID, -1)
}

func restartGrid() service.JobSpec {
	return service.JobSpec{
		Families:  []string{"hypercube"},
		Sizes:     []int{64},
		Protocols: []string{"push-pull"},
		Timings:   []string{service.TimingSync, service.TimingAsync},
		Trials:    10,
		Seed:      7,
	}
}

// TestRumordCacheDirSurvivesRestart: a rumord with -cache-dir computes
// a job, drains on SIGTERM (flushing the persistent tier), and a fresh
// rumord over the same directory serves the same job byte-identically
// from disk — the SDK's CacheStats must report the disk-tier hits.
func TestRumordCacheDirSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	spec := restartGrid()

	c, errCh := startRumord(t, "-workers", "2", "-cache-dir", dir)
	cold := submitAndStream(t, c, spec)
	stopRumord(t, errCh)

	c, errCh = startRumord(t, "-workers", "2", "-cache-dir", dir)
	warm := submitAndStream(t, c, spec)
	if !bytes.Equal(cold, warm) {
		t.Errorf("restarted daemon streamed different bytes\ncold: %s\nwarm: %s", cold, warm)
	}
	snap, err := c.CacheStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if snap.ResultCache == nil || snap.ResultCache.Disk == nil {
		t.Fatalf("cache stats missing tiered result stats: %+v", snap)
	}
	if snap.ResultCache.DiskHits == 0 {
		t.Errorf("restarted daemon served no disk-tier hits: %+v", snap.ResultCache)
	}
	if snap.ResultCache.Hits != snap.ResultCache.MemHits+snap.ResultCache.DiskHits {
		t.Errorf("torn tier counters: %+v", snap.ResultCache)
	}
	if snap.ResultCache.Disk.Records == 0 {
		t.Errorf("disk tier reports no records: %+v", snap.ResultCache.Disk)
	}
	stopRumord(t, errCh)
}

// End-to-end daemon lifecycle through the SDK: rumord starts on an
// ephemeral port, accepts a job, streams NDJSON results, serves the
// experiment registry, runs an experiment, and drains cleanly when the
// process receives SIGTERM.
func TestRumordServesAndDrainsOnSIGTERM(t *testing.T) {
	c, errCh := startRumord(t, "-workers", "2", "-drain-timeout", "30s")
	ctx := context.Background()

	if h, err := c.Health(ctx); err != nil || h.Status != "ok" || h.GoVersion == "" {
		t.Fatalf("healthz = %+v, %v", h, err)
	}

	spec := service.JobSpec{
		Families:  []string{"hypercube", "complete"},
		Sizes:     []int{64},
		Protocols: []string{"push-pull"},
		Timings:   []string{service.TimingSync, service.TimingAsync},
		Trials:    10,
		Seed:      3,
	}
	st, err := c.SubmitJob(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.CellsTotal != 4 {
		t.Fatalf("submit: %+v", st)
	}
	rows := 0
	if err := c.StreamResults(ctx, st.ID, -1, func(res *service.CellResult) error {
		if res.Index != rows {
			t.Errorf("row %d has index %d: stream out of canonical order", rows, res.Index)
		}
		rows++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if rows != 4 {
		t.Fatalf("streamed %d rows, want 4", rows)
	}

	// Experiment endpoints: the registry lists E1–E15, and running one
	// (E12 is graphless and cheap) streams its cells plus an outcome.
	infos, err := c.Experiments(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 16 {
		t.Fatalf("experiment registry lists %d entries, want 16", len(infos))
	}
	cells := 0
	outcome, err := c.RunExperiment(ctx, "e12", client.RunExperimentRequest{Quick: true, Seed: 1},
		func(*service.CellResult) error { cells++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if cells != 1 || outcome.ID != "E12" || outcome.Verdict == "" || outcome.Verdict == "FAILED" {
		t.Fatalf("experiment run: %d cells, outcome %+v", cells, outcome)
	}

	stopRumord(t, errCh)
}

// startPeerDaemons spins up n full rumord HTTP surfaces in-process
// (the same scheduler + server + experiments stack run() builds) and
// returns their base URLs — peers for the -peers coordinator mode.
func startPeerDaemons(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		sched := service.NewScheduler(service.SchedulerConfig{
			Workers: 2,
			Results: service.NewResultCache(256),
			Graphs:  service.NewGraphCache(8),
		})
		srv := service.NewServer(sched)
		experiments.Mount(srv, sched)
		ts := httptest.NewServer(srv)
		t.Cleanup(func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			_ = sched.Shutdown(ctx)
		})
		urls[i] = ts.URL
	}
	return urls
}

// TestRumordShardedEndToEnd: a rumord started with -peers coordinates
// instead of computing — the job shards over three peer daemons and the
// NDJSON stream a client reads off the coordinator is byte-identical to
// a single-node (in-process executor) run of the same cells.
func TestRumordShardedEndToEnd(t *testing.T) {
	peers := startPeerDaemons(t, 3)
	c, errCh := startRumord(t, "-peers", strings.Join(peers, ","))
	ctx := context.Background()

	spec := service.JobSpec{
		Families:  []string{"hypercube", "complete", "star", "cycle"},
		Sizes:     []int{32, 64},
		Protocols: []string{"push-pull", "push"},
		Timings:   []string{service.TimingSync, service.TimingAsync},
		Trials:    6,
		Seed:      13,
	}
	cells := spec.Cells()

	exec := &service.Executor{Graphs: service.NewGraphCache(0)}
	want, err := exec.RunCells(ctx, cells)
	if err != nil {
		t.Fatal(err)
	}
	var wantBytes bytes.Buffer
	enc := json.NewEncoder(&wantBytes)
	enc.SetEscapeHTML(false)
	for _, res := range want {
		if err := enc.Encode(res); err != nil {
			t.Fatal(err)
		}
	}

	if wire := submitAndStream(t, c, spec); !bytes.Equal(wire, wantBytes.Bytes()) {
		t.Errorf("sharded wire stream differs from single-node bytes\nwire:        %s\nsingle-node: %s",
			wire, wantBytes.Bytes())
	}

	// The coordinator's own metrics surface must show the shard families.
	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if metrics.CellsComputed != int64(len(cells)) {
		t.Errorf("coordinator counted %d cells, want %d", metrics.CellsComputed, len(cells))
	}

	stopRumord(t, errCh)
}

// TestRumordSDKEndToEnd is the acceptance test of the SDK path: a real
// rumord daemon, driven only through the client — idempotent submit, a
// result stream force-cut mid-flight and resumed via the cursor, an
// SSE watch — with every result byte-identical to an in-process
// executor run of the same cells.
func TestRumordSDKEndToEnd(t *testing.T) {
	c, errCh := startRumord(t, "-workers", "2")
	ctx := context.Background()

	spec := service.JobSpec{
		Families:  []string{"hypercube", "complete", "star"},
		Sizes:     []int{64, 128},
		Protocols: []string{"push-pull"},
		Timings:   []string{service.TimingSync, service.TimingAsync},
		Trials:    8,
		Seed:      11,
	}
	cells := spec.Cells()

	// In-process reference: the same cells through the local executor.
	exec := &service.Executor{Graphs: service.NewGraphCache(0)}
	want, err := exec.RunCells(ctx, cells)
	if err != nil {
		t.Fatal(err)
	}
	var wantBytes bytes.Buffer
	enc := json.NewEncoder(&wantBytes)
	enc.SetEscapeHTML(false)
	for _, res := range want {
		if err := enc.Encode(res); err != nil {
			t.Fatal(err)
		}
	}

	// SDK path with a fault-injecting transport: the first results
	// stream is cut after 600 bytes (mid-row), forcing RunCells'
	// auto-resume to reconnect with a cursor.
	cut := &clienttest.CutOnceTransport{Match: "/results", After: 600}
	cutClient, err := client.New(c.BaseURL(), client.WithHTTPClient(&http.Client{Transport: cut}))
	if err != nil {
		t.Fatal(err)
	}
	got, err := cutClient.RunCells(ctx, cells)
	if err != nil {
		t.Fatal(err)
	}
	if cut.Cuts() != 1 {
		t.Fatalf("transport cut %d streams, want exactly 1", cut.Cuts())
	}
	var gotBytes bytes.Buffer
	enc = json.NewEncoder(&gotBytes)
	enc.SetEscapeHTML(false)
	for _, res := range got {
		if err := enc.Encode(res); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(wantBytes.Bytes(), gotBytes.Bytes()) {
		t.Errorf("SDK results (with forced reconnect) differ from in-process run\nin-process: %s\nsdk:        %s",
			wantBytes.Bytes(), gotBytes.Bytes())
	}

	// The uncut wire stream must carry exactly those bytes, pinning
	// marshal(in-process) == wire NDJSON (the idempotent resubmit binds
	// to the same server-side job).
	st, err := c.SubmitJob(ctx, service.JobSpec{CellList: cells},
		client.WithIdempotencyKey(client.CellsIdempotencyKey(cells)))
	if err != nil {
		t.Fatal(err)
	}
	if wire := rawResults(t, c, st.ID, -1); !bytes.Equal(wire, wantBytes.Bytes()) {
		t.Errorf("wire stream differs from in-process bytes\nwire:       %s\nin-process: %s",
			wire, wantBytes.Bytes())
	}

	// SSE watch: every cell arrives as a "cell" event in canonical
	// order with its index as the SSE id, and the stream ends at the
	// terminal "state" event.
	watch, err := c.Watch(ctx, st.ID, -1)
	if err != nil {
		t.Fatal(err)
	}
	defer watch.Close()
	var cellEvents int
	var lastState service.JobState
	for {
		ev, err := watch.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		switch ev.Type {
		case "cell":
			if ev.ID != cellEvents || ev.Result == nil || ev.Result.Index != cellEvents {
				t.Fatalf("cell event %d out of order: id %d, %+v", cellEvents, ev.ID, ev.Result)
			}
			cellEvents++
		case "state":
			lastState = ev.Status.State
		case "error":
			t.Fatalf("unexpected error event: %v", ev.Err)
		}
	}
	if cellEvents != len(cells) {
		t.Errorf("watch delivered %d cell events, want %d", cellEvents, len(cells))
	}
	if lastState != service.JobDone {
		t.Errorf("terminal state event = %q, want done", lastState)
	}

	stopRumord(t, errCh)
}
