package main

import (
	"os"
	"path/filepath"
	"testing"

	"rumor/internal/graph"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunInspect(t *testing.T) {
	if err := run([]string{"-graph", "hypercube", "-n", "64"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunExactDiameter(t *testing.T) {
	if err := run([]string{"-graph", "cycle", "-n", "32", "-exact-diameter"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunExport(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "g.edges")
	if err := run([]string{"-graph", "star", "-n", "20", "-out", out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := graph.ReadEdgeList(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 20 || g.NumEdges() != 19 {
		t.Fatalf("exported graph: n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
}

func TestRunUnknownFamily(t *testing.T) {
	if err := run([]string{"-graph", "mystery"}); err == nil {
		t.Fatal("unknown family accepted")
	}
}
