// Command graphgen generates and inspects the graph families used in the
// experiments: it prints structural statistics (size, degrees, diameter)
// and optionally exports the instance as a text edge list.
//
// Examples:
//
//	graphgen -graph powerlaw -n 5000
//	graphgen -graph diamond -n 4096 -out diamond.edges
//	graphgen -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rumor"
	"rumor/internal/graph"
	"rumor/internal/harness"
	"rumor/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("graphgen", flag.ContinueOnError)
	var (
		famName = fs.String("graph", "hypercube", "graph family: "+strings.Join(harness.FamilyNames(), ", "))
		n       = fs.Int("n", 1024, "target size")
		seed    = fs.Uint64("seed", 1, "RNG seed for random families")
		out     = fs.String("out", "", "write edge list to this file")
		list    = fs.Bool("list", false, "list available families and exit")
		exact   = fs.Bool("exact-diameter", false, "compute the exact diameter (O(n·m)) instead of a double-sweep lower bound")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, f := range harness.StandardFamilies() {
			kind := "irregular"
			if f.Regular {
				kind = "regular"
			}
			fmt.Printf("%-16s %s\n", f.Name, kind)
		}
		return nil
	}
	fam, err := harness.FamilyByName(*famName)
	if err != nil {
		return err
	}
	g, err := fam.Build(*n, *seed)
	if err != nil {
		return err
	}
	deg := graph.Degrees(g)
	var diam int32
	diamLabel := "diameter(double-sweep-lb)"
	if *exact {
		diam = graph.Diameter(g)
		diamLabel = "diameter(exact)"
	} else {
		diam = graph.DiameterLowerBound(g)
	}
	tab := stats.NewTable("property", "value")
	tab.AddRow("name", g.Name())
	tab.AddRow("nodes", g.NumNodes())
	tab.AddRow("edges", g.NumEdges())
	tab.AddRow("connected", graph.IsConnected(g))
	tab.AddRow("min-degree", int(deg.Min))
	tab.AddRow("max-degree", int(deg.Max))
	tab.AddRow("mean-degree", deg.Mean)
	tab.AddRow("degree-stddev", deg.StdDev)
	tab.AddRow(diamLabel, int(diam))
	if d, ok := g.Regularity(); ok {
		tab.AddRow("regular", fmt.Sprintf("yes (d=%d)", d))
	} else {
		tab.AddRow("regular", "no")
	}
	if err := tab.Render(os.Stdout); err != nil {
		return err
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rumor.WriteEdgeList(f, g); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	return nil
}
