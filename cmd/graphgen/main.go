// Command graphgen generates and inspects the graph families used in the
// experiments: it prints structural statistics (size, degrees, diameter)
// and optionally exports the instance as a text edge list. Structured
// timing logs (build, analysis, export durations) go to stderr;
// -log-format=json makes them machine-readable and -log-level=warn
// silences them.
//
// Examples:
//
//	graphgen -graph powerlaw -n 5000
//	graphgen -graph diamond -n 4096 -out diamond.edges
//	graphgen -graph hypercube -n 65536 -log-format json -log-level debug
//	graphgen -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rumor"
	"rumor/internal/graph"
	"rumor/internal/harness"
	"rumor/internal/obs"
	"rumor/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("graphgen", flag.ContinueOnError)
	var (
		famName = fs.String("graph", "hypercube", "graph family: "+strings.Join(harness.FamilyNames(), ", "))
		n       = fs.Int("n", 1024, "target size")
		seed    = fs.Uint64("seed", 1, "RNG seed for random families")
		out     = fs.String("out", "", "write edge list to this file")
		list    = fs.Bool("list", false, "list available families and exit")
		exact   = fs.Bool("exact-diameter", false, "compute the exact diameter (O(n·m)) instead of a double-sweep lower bound")

		logFormat = fs.String("log-format", "text", "structured log format for timing output: json|text")
		logLevel  = fs.String("log-level", "info", "log level: debug|info|warn|error")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		return err
	}
	if *list {
		for _, f := range harness.StandardFamilies() {
			kind := "irregular"
			if f.Regular {
				kind = "regular"
			}
			fmt.Printf("%-16s %s\n", f.Name, kind)
		}
		return nil
	}
	fam, err := harness.FamilyByName(*famName)
	if err != nil {
		return err
	}
	start := time.Now()
	g, err := fam.Build(*n, *seed)
	if err != nil {
		return err
	}
	logger.Info("graph built", "family", fam.Name, "n", g.NumNodes(), "m", g.NumEdges(),
		"seed", *seed, "duration_ms", float64(time.Since(start).Microseconds())/1000)
	start = time.Now()
	deg := graph.Degrees(g)
	var diam int32
	diamLabel := "diameter(double-sweep-lb)"
	if *exact {
		diam = graph.Diameter(g)
		diamLabel = "diameter(exact)"
	} else {
		diam = graph.DiameterLowerBound(g)
	}
	logger.Info("analysis done", "exact_diameter", *exact,
		"duration_ms", float64(time.Since(start).Microseconds())/1000)
	tab := stats.NewTable("property", "value")
	tab.AddRow("name", g.Name())
	tab.AddRow("nodes", g.NumNodes())
	tab.AddRow("edges", g.NumEdges())
	tab.AddRow("connected", graph.IsConnected(g))
	tab.AddRow("min-degree", int(deg.Min))
	tab.AddRow("max-degree", int(deg.Max))
	tab.AddRow("mean-degree", deg.Mean)
	tab.AddRow("degree-stddev", deg.StdDev)
	tab.AddRow(diamLabel, int(diam))
	if d, ok := g.Regularity(); ok {
		tab.AddRow("regular", fmt.Sprintf("yes (d=%d)", d))
	} else {
		tab.AddRow("regular", "no")
	}
	if err := tab.Render(os.Stdout); err != nil {
		return err
	}
	if *out != "" {
		start = time.Now()
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rumor.WriteEdgeList(f, g); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		logger.Info("edge list written", "path", *out, "edges", g.NumEdges(),
			"duration_ms", float64(time.Since(start).Microseconds())/1000)
		fmt.Printf("wrote %s\n", *out)
	}
	return nil
}
