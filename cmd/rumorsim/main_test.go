package main

import (
	"context"
	"io"
	"net/http/httptest"
	"os"
	"testing"

	"rumor/internal/core"
	"rumor/internal/service"
)

func TestParseProtocol(t *testing.T) {
	cases := map[string]core.Protocol{
		"push": core.Push, "PULL": core.Pull,
		"push-pull": core.PushPull, "pushpull": core.PushPull, "pp": core.PushPull,
	}
	for name, want := range cases {
		got, err := parseProtocol(name)
		if err != nil || got != want {
			t.Errorf("parseProtocol(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parseProtocol("smoke"); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestRunHappyPath(t *testing.T) {
	err := run([]string{"-graph", "complete", "-n", "32", "-trials", "5", "-timing", "both", "-seed", "7"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunSweep(t *testing.T) {
	err := run([]string{"-graph", "star", "-sweep", "16, 32", "-trials", "5", "-timing", "sync", "-csv"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunCurve(t *testing.T) {
	err := run([]string{"-graph", "complete", "-n", "24", "-trials", "5", "-curve", "-curve-points", "5"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-graph", "nonexistent"},
		{"-protocol", "bogus"},
		{"-timing", "sometimes"},
		{"-graph", "complete", "-sweep", "12,abc"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunSourceOutOfRangeFallsBack(t *testing.T) {
	// A too-large -source silently falls back to node 0 (documented
	// behaviour): the run must succeed.
	if err := run([]string{"-graph", "complete", "-n", "16", "-trials", "3", "-source", "9999", "-timing", "sync"}); err != nil {
		t.Fatal(err)
	}
}

// startTestServer spins up the full rumord HTTP surface in-process for
// -server mode tests.
func startTestServer(t *testing.T) string {
	t.Helper()
	sched := service.NewScheduler(service.SchedulerConfig{Workers: 2})
	ts := httptest.NewServer(service.NewServer(sched))
	t.Cleanup(func() {
		ts.Close()
		sched.Shutdown(context.Background())
	})
	return ts.URL
}

// TestRunServerModeMatchesLocal: -server routes the same cells through
// a rumord daemon via the SDK and prints byte-identical output.
func TestRunServerModeMatchesLocal(t *testing.T) {
	url := startTestServer(t)
	args := []string{"-graph", "complete", "-sweep", "16,32", "-trials", "5", "-timing", "both", "-seed", "7", "-csv"}

	local := captureStdout(t, func() {
		if err := run(args); err != nil {
			t.Error(err)
		}
	})
	remote := captureStdout(t, func() {
		if err := run(append(args, "-server", url)); err != nil {
			t.Error(err)
		}
	})
	if local != remote {
		t.Errorf("-server output differs from local run\nlocal:\n%s\nremote:\n%s", local, remote)
	}
}

func TestRunServerModeFlagConflicts(t *testing.T) {
	for _, args := range [][]string{
		{"-server", "http://localhost:1", "-cache"},
		{"-server", "http://localhost:1", "-curve"},
		{"-server", "://bad-url"},
	} {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// captureStdout redirects os.Stdout around fn (the CLI writes tables
// straight to stdout).
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	fn()
	w.Close()
	os.Stdout = old
	return <-done
}
