package main

import (
	"testing"

	"rumor/internal/core"
)

func TestParseProtocol(t *testing.T) {
	cases := map[string]core.Protocol{
		"push": core.Push, "PULL": core.Pull,
		"push-pull": core.PushPull, "pushpull": core.PushPull, "pp": core.PushPull,
	}
	for name, want := range cases {
		got, err := parseProtocol(name)
		if err != nil || got != want {
			t.Errorf("parseProtocol(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parseProtocol("smoke"); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestRunHappyPath(t *testing.T) {
	err := run([]string{"-graph", "complete", "-n", "32", "-trials", "5", "-timing", "both", "-seed", "7"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunSweep(t *testing.T) {
	err := run([]string{"-graph", "star", "-sweep", "16, 32", "-trials", "5", "-timing", "sync", "-csv"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunCurve(t *testing.T) {
	err := run([]string{"-graph", "complete", "-n", "24", "-trials", "5", "-curve", "-curve-points", "5"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-graph", "nonexistent"},
		{"-protocol", "bogus"},
		{"-timing", "sometimes"},
		{"-graph", "complete", "-sweep", "12,abc"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunSourceOutOfRangeFallsBack(t *testing.T) {
	// A too-large -source silently falls back to node 0 (documented
	// behaviour): the run must succeed.
	if err := run([]string{"-graph", "complete", "-n", "16", "-trials", "3", "-source", "9999", "-timing", "sync"}); err != nil {
		t.Fatal(err)
	}
}
