// Command rumorsim runs rumor spreading simulations from the command
// line: single measurements or size sweeps over any standard graph
// family, with any protocol and timing model. With -server it runs the
// same cells on a rumord daemon through the typed client SDK instead
// of in-process — same cells, same bytes, different executor.
//
// Examples:
//
//	rumorsim -graph hypercube -n 1024 -protocol push-pull -timing both -trials 200
//	rumorsim -graph star -n 4096 -protocol push -timing sync -trials 50
//	rumorsim -graph diamond -sweep 512,1331,4096 -timing both -csv
//	rumorsim -graph hypercube -n 4096 -server http://localhost:8080
//	rumorsim -graph gnp-threshold -n 512 -dynamic resample
//	rumorsim -graph hypercube -n 256 -churn "5@2:leave,5@8:join-drop"
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"rumor"
	"rumor/client"
	"rumor/internal/core"
	"rumor/internal/harness"
	"rumor/internal/obs"
	"rumor/internal/service"
	"rumor/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rumorsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rumorsim", flag.ContinueOnError)
	var (
		graphName  = fs.String("graph", "hypercube", "graph family: "+strings.Join(harness.FamilyNames(), ", "))
		n          = fs.Int("n", 1024, "target graph size")
		sweep      = fs.String("sweep", "", "comma-separated sizes (overrides -n)")
		protoName  = fs.String("protocol", "push-pull", "protocol: push, pull, push-pull")
		timing     = fs.String("timing", "both", "timing model: sync, async, both")
		trials     = fs.Int("trials", 100, "trials per measurement")
		seed       = fs.Uint64("seed", 1, "root RNG seed")
		source     = fs.Int("source", 0, "source node")
		workers    = fs.Int("workers", 0, "parallel workers (0 = all cores)")
		loss       = fs.Float64("loss", 0, "per-contact loss probability in [0, 1)")
		view       = fs.String("view", "", "async process view: global-clock, per-node-clocks, per-edge-clocks")
		dynamic    = fs.String("dynamic", "", "time-varying topology: resample (fresh instance per epoch) or perturb (edge-Markovian evolution)")
		dynPeriod  = fs.Float64("dynamic-period", 0, "epoch length in rounds/time units for -dynamic (0 = 1)")
		perturb    = fs.Float64("perturb-rate", 0, "per-epoch edge flip rate in (0, 1] for -dynamic perturb")
		churnSpec  = fs.String("churn", "", "comma-separated churn events node@time:op, op in leave, join, join-drop (e.g. 5@2:leave,5@8:join-drop)")
		csv        = fs.Bool("csv", false, "emit CSV instead of an aligned table")
		useCache   = fs.Bool("cache", false, "serve repeated cells from a result LRU (rumord's cache tier)")
		server     = fs.String("server", "", "run the cells on a rumord server at this base URL (typed client SDK) instead of in-process")
		curve      = fs.Bool("curve", false, "emit the mean spreading curve (informed fraction vs time) instead of summary rows")
		curvePts   = fs.Int("curve-points", 40, "number of grid points for -curve")
		metricsOut = fs.String("metrics-out", "", "write a Prometheus metrics snapshot to this file after the run (\"-\" = stderr); with -server, scrapes the daemon")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	proto, err := parseProtocol(*protoName)
	if err != nil {
		return err
	}
	if *timing != "sync" && *timing != "async" && *timing != "both" {
		return fmt.Errorf("unknown timing %q (want sync, async, both)", *timing)
	}
	fam, err := harness.FamilyByName(*graphName)
	if err != nil {
		return err
	}
	churn, err := parseChurn(*churnSpec)
	if err != nil {
		return err
	}
	if *curve {
		if *dynamic != "" || len(churn) > 0 {
			return fmt.Errorf("-curve does not support -dynamic or -churn (it samples static full trajectories)")
		}
		if *server != "" {
			return fmt.Errorf("-curve runs in-process only (it samples full trajectories, not cells)")
		}
		g, err := fam.Build(*n, *seed)
		if err != nil {
			return err
		}
		return emitCurves(g, proto, *timing, *trials, *seed, *curvePts, *csv)
	}
	sizes := []int{*n}
	if *sweep != "" {
		sizes = sizes[:0]
		for _, part := range strings.Split(*sweep, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("bad sweep entry %q: %v", part, err)
			}
			sizes = append(sizes, v)
		}
	}

	// Summary rows run through the same cell model as the rumord
	// service: one cell list, executed either by the in-process
	// executor or — with -server — by a rumord daemon through the
	// client SDK. Results are byte-identical either way; only where
	// they compute changes. Locally the graph tier is always on (sync
	// and async of one sweep size share one built instance) and -cache
	// additionally turns on the completed-cell result LRU; on a server
	// the daemon's own tiers apply.
	// With -metrics-out a local run carries its own registry (the same
	// instruments rumord exports), so a CLI sweep's latency histograms
	// and cache counters land in a scrape-compatible snapshot.
	var reg *obs.Registry
	var observ *service.Observability
	if *metricsOut != "" && *server == "" {
		reg = obs.NewRegistry()
		observ = service.NewObservability(reg, nil)
	}
	runner, err := buildRunner(*server, *workers, *useCache, observ)
	if err != nil {
		return err
	}
	var timings []string
	if *timing == "sync" || *timing == "both" {
		timings = append(timings, service.TimingSync)
	}
	if *timing == "async" || *timing == "both" {
		timings = append(timings, service.TimingAsync)
	}
	var cells []service.CellSpec
	var cellTimings []string
	for _, size := range sizes {
		for _, tm := range timings {
			trialSeed := *seed
			if tm == service.TimingAsync {
				trialSeed = *seed + 1
			}
			cell := service.CellSpec{
				Family:    *graphName,
				N:         size,
				Protocol:  proto.String(),
				Timing:    tm,
				LossProb:  *loss,
				Trials:    *trials,
				GraphSeed: *seed,
				TrialSeed: trialSeed,
				Source:    *source,
			}
			if tm == service.TimingAsync {
				cell.View = *view
			}
			cell.Dynamic = *dynamic
			cell.DynamicPeriod = *dynPeriod
			cell.PerturbRate = *perturb
			cell.Churn = churn
			cells = append(cells, cell)
			cellTimings = append(cellTimings, tm)
		}
	}
	results, err := runner.RunCells(context.Background(), cells)
	if err != nil {
		return err
	}
	tab := stats.NewTable("graph", "n", "m", "timing", "protocol",
		"mean", "median", "q99", "max", "stderr")
	for i, res := range results {
		addRow(tab, res, cellTimings[i], proto)
	}
	if *csv {
		err = tab.WriteCSV(os.Stdout)
	} else {
		err = tab.Render(os.Stdout)
	}
	if err != nil {
		return err
	}
	if *metricsOut != "" {
		return writeMetricsSnapshot(*metricsOut, reg, runner)
	}
	return nil
}

// writeMetricsSnapshot dumps a Prometheus text snapshot after the run:
// the local registry's state, or — when the cells ran on a daemon —
// a scrape of the daemon's /metrics. path "-" writes to stderr (stdout
// carries the result table).
func writeMetricsSnapshot(path string, reg *obs.Registry, runner service.CellRunner) error {
	var data []byte
	if reg != nil {
		var buf strings.Builder
		if err := reg.WriteText(&buf); err != nil {
			return err
		}
		data = []byte(buf.String())
	} else {
		c, ok := runner.(*client.Client)
		if !ok {
			return fmt.Errorf("-metrics-out: no metrics source for this runner")
		}
		var err error
		data, err = c.PromMetricsText(context.Background())
		if err != nil {
			return fmt.Errorf("-metrics-out: scraping daemon: %w", err)
		}
	}
	if path == "-" {
		_, err := os.Stderr.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// buildRunner picks the cell runner: the rumord server at serverURL
// via the SDK, or the in-process executor (cells serial, trials
// parallel — the historical CLI parallelism shape).
func buildRunner(serverURL string, workers int, useCache bool, observ *service.Observability) (service.CellRunner, error) {
	if serverURL != "" {
		if useCache {
			return nil, fmt.Errorf("-cache is in-process only; with -server, caching is the daemon's (-result-cache/-cache-dir)")
		}
		return client.New(serverURL)
	}
	trialWorkers := workers
	if trialWorkers <= 0 {
		trialWorkers = runtime.GOMAXPROCS(0)
	}
	exec := &service.Executor{
		TrialWorkers: trialWorkers,
		CellWorkers:  1,
		Graphs:       service.NewGraphCache(0),
		Obs:          observ,
	}
	if useCache {
		exec.Results = service.NewResultCache(0)
	}
	return exec, nil
}

func addRow(tab *stats.Table, res *service.CellResult, timing string, proto core.Protocol) {
	s := res.Summary
	tab.AddRow(res.Graph, res.N, res.M, timing, proto.String(),
		s.Mean, s.Median, stats.Quantile(res.Times, 0.99), s.Max, stats.StdErr(res.Times))
}

// emitCurves prints the trial-averaged informed fraction on a uniform
// time grid, for the sync and/or async process — the data behind a
// "fraction informed vs time" figure.
func emitCurves(g *rumor.Graph, proto core.Protocol, timing string, trials int, seed uint64, points int, csv bool) error {
	if points < 2 {
		points = 2
	}
	type series struct {
		name   string
		curves []*core.Curve
		maxT   float64
	}
	var all []series
	if timing == "sync" || timing == "both" {
		s := series{name: "sync"}
		for i := 0; i < trials; i++ {
			res, err := rumor.RunSync(g, 0, rumor.SyncConfig{Protocol: proto}, rumor.NewRNG(seed+uint64(i)))
			if err != nil {
				return err
			}
			c := res.Curve()
			s.curves = append(s.curves, c)
			if t := float64(res.Rounds); t > s.maxT {
				s.maxT = t
			}
		}
		all = append(all, s)
	}
	if timing == "async" || timing == "both" {
		s := series{name: "async"}
		for i := 0; i < trials; i++ {
			res, err := rumor.RunAsync(g, 0, rumor.AsyncConfig{Protocol: proto}, rumor.NewRNG(seed+uint64(i)+7777777))
			if err != nil {
				return err
			}
			s.curves = append(s.curves, res.Curve())
			if res.Time > s.maxT {
				s.maxT = res.Time
			}
		}
		all = append(all, s)
	}
	header := []string{"t"}
	for _, s := range all {
		header = append(header, "mean-frac-"+s.name)
	}
	tab := stats.NewTable(header...)
	maxT := 0.0
	for _, s := range all {
		if s.maxT > maxT {
			maxT = s.maxT
		}
	}
	for i := 0; i < points; i++ {
		t := maxT * float64(i) / float64(points-1)
		row := make([]interface{}, 0, len(all)+1)
		row = append(row, t)
		for _, s := range all {
			var sum float64
			for _, c := range s.curves {
				sum += c.FractionAt(t)
			}
			row = append(row, sum/float64(len(s.curves)))
		}
		tab.AddRow(row...)
	}
	if csv {
		return tab.WriteCSV(os.Stdout)
	}
	return tab.Render(os.Stdout)
}

func parseProtocol(name string) (core.Protocol, error) {
	return service.ParseProtocol(name)
}

// parseChurn parses the -churn flag: comma-separated node@time:op
// entries, op one of leave, join, join-drop. Listed order is preserved
// (same-time events apply in listed order).
func parseChurn(spec string) ([]service.ChurnSpec, error) {
	if spec == "" {
		return nil, nil
	}
	var churn []service.ChurnSpec
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		at := strings.IndexByte(part, '@')
		colon := strings.LastIndexByte(part, ':')
		if at < 0 || colon < at {
			return nil, fmt.Errorf("bad churn entry %q (want node@time:op)", part)
		}
		node, err := strconv.Atoi(part[:at])
		if err != nil {
			return nil, fmt.Errorf("bad churn node in %q: %v", part, err)
		}
		t, err := strconv.ParseFloat(part[at+1:colon], 64)
		if err != nil {
			return nil, fmt.Errorf("bad churn time in %q: %v", part, err)
		}
		ev := service.ChurnSpec{Node: node, Time: t}
		switch part[colon+1:] {
		case "leave":
			ev.Op = service.ChurnOpLeave
		case "join":
			ev.Op = service.ChurnOpJoin
		case "join-drop":
			ev.Op = service.ChurnOpJoin
			ev.DropState = true
		default:
			return nil, fmt.Errorf("bad churn op in %q (want leave, join, join-drop)", part)
		}
		churn = append(churn, ev)
	}
	return churn, nil
}
