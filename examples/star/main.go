// Star anomaly: the paper's Section 1 example where synchrony and
// asynchrony pull apart in BOTH directions depending on the protocol.
//
// On an n-vertex star (center + n-1 leaves), starting from a leaf:
//
//   - synchronous push-pull needs at most 2 rounds: the source leaf
//     pushes to the center in round 1 (every leaf contacts the center
//     every round), and in round 2 every other leaf pulls from the center;
//   - asynchronous push-pull needs Θ(log n) time: enough distinct Poisson
//     clocks must tick before every leaf has either pulled or been pushed;
//   - synchronous push(-only) needs Θ(n log n) rounds: the center must
//     individually push to each leaf — coupon collection.
package main

import (
	"fmt"
	"log"
	"math"

	"rumor"
)

func main() {
	fmt.Println("n       sync-pp(max)  async-pp(mean)  ln(n)  sync-push(mean)  n·ln(n)")
	for _, n := range []int{256, 1024, 4096} {
		g, err := rumor.Star(n)
		if err != nil {
			log.Fatal(err)
		}
		leaf := rumor.NodeID(1)

		syncM, err := rumor.MeasureSync(g, leaf, rumor.PushPull, 100, 1, 0)
		if err != nil {
			log.Fatal(err)
		}
		asyncM, err := rumor.MeasureAsync(g, leaf, rumor.PushPull, 100, 2, 0)
		if err != nil {
			log.Fatal(err)
		}
		// Sync push is Θ(n log n) rounds — expensive; fewer trials and
		// started at the center (the leaf start only adds ~1 round).
		pushM, err := rumor.MeasureSync(g, 0, rumor.Push, 20, 3, 0)
		if err != nil {
			log.Fatal(err)
		}

		syncS := rumor.Summarize(syncM.Times)
		asyncS := rumor.Summarize(asyncM.Times)
		pushS := rumor.Summarize(pushM.Times)
		fn := float64(n)
		fmt.Printf("%-7d %-13.0f %-15.2f %-6.2f %-16.0f %.0f\n",
			n, syncS.Max, asyncS.Mean, math.Log(fn), pushS.Mean, fn*math.Log(fn))
	}
	fmt.Println()
	fmt.Println("Expected shape: column 2 stays ≤ 2; column 3 tracks ln(n);")
	fmt.Println("column 5 tracks n·ln(n). The star shows async can be log(n)×")
	fmt.Println("slower than sync push-pull — the additive log n term in Theorem 1")
	fmt.Println("is necessary — while sync push is catastrophically slower than both.")
}
