// Theorem check: measure both main results of the paper on a spread of
// topologies at one size, using the public API only.
//
//	Theorem 1: T_{1/n}(pp-a) = O(T_{1/n}(pp) + log n)
//	Theorem 2: E[T(pp)] = O(sqrt(n) · E[T(pp-a)])
package main

import (
	"fmt"
	"log"
	"math"

	"rumor"
)

func main() {
	const trials = 100
	fmt.Println("family          n      sync q99  async q99  thm1 ratio  E[sync]  E[async]  thm2 ratio")
	for _, name := range []string{"complete", "star", "cycle", "hypercube", "torus", "gnp", "powerlaw", "diamond"} {
		fam, err := rumor.FamilyByName(name)
		if err != nil {
			log.Fatal(err)
		}
		g, err := fam.Build(1024, 7)
		if err != nil {
			log.Fatal(err)
		}
		sync, err := rumor.MeasureSync(g, 0, rumor.PushPull, trials, 11, 0)
		if err != nil {
			log.Fatal(err)
		}
		async, err := rumor.MeasureAsync(g, 0, rumor.PushPull, trials, 13, 0)
		if err != nil {
			log.Fatal(err)
		}
		n := float64(g.NumNodes())
		sq := rumor.Quantile(sync.Times, 0.99)
		aq := rumor.Quantile(async.Times, 0.99)
		sm := rumor.Summarize(sync.Times).Mean
		am := rumor.Summarize(async.Times).Mean
		thm1 := aq / (sq + math.Log(n))
		thm2 := sm / (math.Sqrt(n) * am)
		fmt.Printf("%-15s %-6d %-9.1f %-10.2f %-11.2f %-8.1f %-9.2f %.3f\n",
			name, g.NumNodes(), sq, aq, thm1, sm, am, thm2)
	}
	fmt.Println()
	fmt.Println("Theorem 1 predicts column 'thm1 ratio' is bounded by a universal")
	fmt.Println("constant; Theorem 2 predicts the same for 'thm2 ratio'. The star")
	fmt.Println("maximizes the former (its sync time is below the additive log n);")
	fmt.Println("the diamond chain pushes hardest on the latter.")
}
