// Gossip-style failure detection — one of the classical applications of
// rumor spreading cited in the paper's introduction (van Renesse, Minsky,
// Hayden [26]).
//
// A cluster of nodes must learn that node F has crashed. The failure
// notice is a rumor originating at the node that first detected the
// crash (a neighbor of F). We model the cluster as a connected random
// regular overlay (as real gossip systems build) and compare how fast
// the notice reaches everyone under the asynchronous push-pull protocol
// — including with lossy links — using detection latency percentiles,
// the metric operators actually care about.
package main

import (
	"fmt"
	"log"

	"rumor"
)

func main() {
	const (
		clusterSize = 1000
		degree      = 8 // each node gossips with 8 overlay peers
		trials      = 200
	)
	overlay, err := rumor.RandomRegular(clusterSize, degree, rumor.NewRNG(1))
	if err != nil {
		log.Fatal(err)
	}
	if !rumor.IsConnected(overlay) {
		log.Fatal("overlay disconnected; re-seed")
	}
	fmt.Printf("overlay: %v\n\n", overlay)

	detector := rumor.NodeID(0) // the node that noticed the failure

	fmt.Println("link loss  p50 latency  p99 latency  max latency  (time units; 1 = mean gossip interval)")
	for _, loss := range []float64{0.0, 0.10, 0.30} {
		times := make([]float64, 0, trials)
		for seed := uint64(0); seed < trials; seed++ {
			res, err := rumor.RunAsync(overlay, detector, rumor.AsyncConfig{
				Protocol:     rumor.PushPull,
				TransmitProb: 1 - loss,
			}, rumor.NewRNG(seed))
			if err != nil {
				log.Fatal(err)
			}
			if !res.Complete {
				log.Fatalf("notice failed to reach the whole cluster (loss %.0f%%)", loss*100)
			}
			times = append(times, res.Time)
		}
		fmt.Printf("%8.0f%%  %-12.2f %-12.2f %-12.2f\n",
			loss*100,
			rumor.Quantile(times, 0.50),
			rumor.Quantile(times, 0.99),
			rumor.Quantile(times, 1.0))
	}
	fmt.Println()
	fmt.Println("Detection latency grows only mildly under heavy link loss —")
	fmt.Println("the push-pull epidemic is self-healing, which is exactly why")
	fmt.Println("gossip failure detectors use it. Latencies are Θ(log n) per")
	fmt.Println("Theorem 1 applied to the random regular overlay.")
}
