// Expansion bounds carry over to asynchrony — the practical payoff of
// Theorem 1 the paper points out: every known upper bound on synchronous
// push-pull in terms of graph expansion (e.g. T = O(log n / Φ) via
// conductance, refs [17, 18]) now also bounds the asynchronous protocol.
//
// This example estimates the conductance of several topologies through
// the lazy-walk spectral gap (Cheeger: gap ≤ Φ ≤ 2√gap), measures the
// asynchronous spreading time, and shows the bound in action.
package main

import (
	"fmt"
	"log"
	"math"

	"rumor"
)

func main() {
	fmt.Println("graph                     gap      Φ range (Cheeger)   ln(n)/gap  async q99  bound holds")
	for _, name := range []string{"complete", "hypercube", "torus", "random-regular", "gnp", "cycle"} {
		fam, err := rumor.FamilyByName(name)
		if err != nil {
			log.Fatal(err)
		}
		g, err := fam.Build(512, 1)
		if err != nil {
			log.Fatal(err)
		}
		gap, err := rumor.SpectralGapLazy(g, 5000, rumor.NewRNG(2))
		if err != nil {
			log.Fatal(err)
		}
		lo, hi := rumor.CheegerBounds(gap)
		m, err := rumor.MeasureAsync(g, 0, rumor.PushPull, 100, 3, 0)
		if err != nil {
			log.Fatal(err)
		}
		q99 := rumor.Quantile(m.Times, 0.99)
		bound := math.Log(float64(g.NumNodes())) / gap
		fmt.Printf("%-24s  %-7.4f  [%-6.4f, %-6.4f]    %-9.1f  %-9.2f  %v\n",
			g.Name(), gap, lo, hi, bound, q99, q99 <= bound)
	}
	fmt.Println()
	fmt.Println("For well-expanding graphs the bound ln(n)/gap is within a small")
	fmt.Println("factor of the measured asynchronous time; for the cycle it is")
	fmt.Println("loose (gap ~ 1/n² but T ~ n) — conductance bounds are upper")
	fmt.Println("bounds, tight on expanders. Exact Φ and vertex expansion are")
	fmt.Println("available for small graphs via ConductanceExact and")
	fmt.Println("VertexExpansionExact.")
}
