// Social-network rumor spreading: the paper's motivating setting.
//
// On power-law topologies modelling social networks (Chung–Lu and
// preferential attachment; Section 1, citing [9] and [16]), the
// asynchronous push-pull protocol spreads a rumor to a large fraction of
// the nodes significantly faster than the synchronous one: high-degree
// hubs tick just as often as everyone else, but asynchrony lets the
// "fast" part of the graph race ahead instead of waiting for the round
// barrier.
package main

import (
	"fmt"
	"log"

	"rumor"
)

func main() {
	const n = 5000
	rng := rumor.NewRNG(99)

	// Chung–Lu with power-law expected degrees (exponent 2.5).
	cl, err := rumor.ChungLuPowerLaw(n, 2.5, 4, rng)
	if err != nil {
		log.Fatal(err)
	}
	cl, _, err = rumor.LargestComponent(cl)
	if err != nil {
		log.Fatal(err)
	}

	// Barabási–Albert preferential attachment with m = 3.
	pa, err := rumor.PreferentialAttachment(n, 3, rng)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("graph                    coverage  sync rounds  async time  speedup")
	for _, g := range []*rumor.Graph{cl, pa} {
		for _, frac := range []float64{0.50, 0.99} {
			syncMean, asyncMean := coverage(g, frac)
			fmt.Printf("%-24s %4.0f%%     %-12.2f %-11.2f %.2fx\n",
				g.Name(), frac*100, syncMean, asyncMean, syncMean/asyncMean)
		}
	}
	fmt.Println()
	fmt.Println("Async reaches the bulk of a power-law network faster than sync —")
	fmt.Println("the observation that motivated the paper's study of how large the")
	fmt.Println("asynchrony advantage can get (Theorem 2: at most ~sqrt(n)).")
}

// coverage returns the mean sync rounds and mean async time to inform a
// fraction frac of the nodes, over 40 trials each.
func coverage(g *rumor.Graph, frac float64) (syncMean, asyncMean float64) {
	const trials = 40
	var syncSum, asyncSum float64
	for seed := uint64(0); seed < trials; seed++ {
		sres, err := rumor.RunSync(g, 0, rumor.SyncConfig{Protocol: rumor.PushPull}, rumor.NewRNG(seed))
		if err != nil {
			log.Fatal(err)
		}
		ares, err := rumor.RunAsync(g, 0, rumor.AsyncConfig{Protocol: rumor.PushPull}, rumor.NewRNG(seed+trials))
		if err != nil {
			log.Fatal(err)
		}
		syncSum += float64(sres.CoverageRound(frac))
		asyncSum += ares.CoverageTime(frac)
	}
	return syncSum / trials, asyncSum / trials
}
