// Quickstart: build a graph, spread a rumor synchronously and
// asynchronously, and compare the two — the library's core loop in ~40
// lines.
package main

import (
	"fmt"
	"log"

	"rumor"
)

func main() {
	// A 10-dimensional hypercube: 1024 nodes, a classical gossip topology.
	g, err := rumor.Hypercube(10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %v\n", g)

	rng := rumor.NewRNG(2016)
	src := rumor.NodeID(0)

	// Synchronous push-pull: lock-step rounds.
	sync, err := rumor.RunSync(g, src, rumor.SyncConfig{Protocol: rumor.PushPull}, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sync  push-pull: informed %d/%d nodes in %d rounds\n",
		sync.NumInformed, g.NumNodes(), sync.Rounds)

	// Asynchronous push-pull: every node has a rate-1 Poisson clock.
	async, err := rumor.RunAsync(g, src, rumor.AsyncConfig{Protocol: rumor.PushPull}, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("async push-pull: informed %d/%d nodes in %.2f time units (%d steps)\n",
		async.NumInformed, g.NumNodes(), async.Time, async.Steps)

	// The paper's Theorem 1 says the async time is O(sync + log n);
	// on the hypercube both are Θ(log n).
	fmt.Printf("async/sync ratio: %.2f (Theorem 1: bounded whenever sync = Ω(log n))\n",
		async.Time/float64(sync.Rounds))

	// Repeated measurement with confidence: 100 seeded trials in parallel.
	m, err := rumor.MeasureAsync(g, src, rumor.PushPull, 100, 7, 0)
	if err != nil {
		log.Fatal(err)
	}
	s := rumor.Summarize(m.Times)
	fmt.Printf("async over 100 trials: mean %.2f  median %.2f  q99 %.2f  max %.2f\n",
		s.Mean, s.Median, rumor.Quantile(m.Times, 0.99), s.Max)
}
