package rumor_test

// Golden regression tests: fixed-seed runs with exact expected outputs.
// Every simulation is a pure function of (graph, source, config, seed),
// so these values must never change unless an engine's RNG consumption
// order is deliberately altered — in which case this file documents the
// behaviour change.
//
// RNG-consumption changes to date:
//
//   - Throughput rework (bitset/batched-RNG/ziggurat): the synchronous
//     engines batch each round's raw draws and reduce them by Lemire's
//     multiply-shift (previously one masked/rejected Uint64n call per
//     contact), and the asynchronous engines draw Exp via the ziggurat
//     method (previously inverse-CDF, one uniform per draw). Same
//     distributions — verified by the reference-oracle and statistical
//     equivalence tests in internal/core — but different streams, so the
//     pinned values below were recomputed.

import (
	"math"
	"testing"

	"rumor"
)

func TestGoldenRuns(t *testing.T) {
	build := map[string]func() (*rumor.Graph, error){
		"hypercube6": func() (*rumor.Graph, error) { return rumor.Hypercube(6) },
		"star64":     func() (*rumor.Graph, error) { return rumor.Star(64) },
		"cycle48":    func() (*rumor.Graph, error) { return rumor.Cycle(48) },
	}
	cases := []struct {
		label      string
		seed       uint64
		syncRounds int
		asyncTime  float64
		asyncSteps int64
		ppxRounds  int
	}{
		{"hypercube6", 42, 9, 4.2228340669, 292, 7},
		{"star64", 7, 1, 6.3711811086, 395, 1},
		{"cycle48", 13, 32, 16.0440362184, 768, 24},
	}
	for _, c := range cases {
		c := c
		t.Run(c.label, func(t *testing.T) {
			g, err := build[c.label]()
			if err != nil {
				t.Fatal(err)
			}
			s, err := rumor.RunSync(g, 0, rumor.SyncConfig{Protocol: rumor.PushPull}, rumor.NewRNG(c.seed))
			if err != nil {
				t.Fatal(err)
			}
			if s.Rounds != c.syncRounds {
				t.Errorf("sync rounds = %d, want %d", s.Rounds, c.syncRounds)
			}
			a, err := rumor.RunAsync(g, 0, rumor.AsyncConfig{Protocol: rumor.PushPull}, rumor.NewRNG(c.seed))
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(a.Time-c.asyncTime) > 1e-9 {
				t.Errorf("async time = %.10f, want %.10f", a.Time, c.asyncTime)
			}
			if a.Steps != c.asyncSteps {
				t.Errorf("async steps = %d, want %d", a.Steps, c.asyncSteps)
			}
			x, err := rumor.RunPPVariant(g, 0, rumor.PPX, rumor.SyncConfig{}, rumor.NewRNG(c.seed))
			if err != nil {
				t.Fatal(err)
			}
			if x.Rounds != c.ppxRounds {
				t.Errorf("ppx rounds = %d, want %d", x.Rounds, c.ppxRounds)
			}
		})
	}
}
