package rumor_test

// Godoc examples: these render in the package documentation and run as
// tests, pinning user-visible behaviour.

import (
	"fmt"

	"rumor"
)

func ExampleRunAsync() {
	// A two-node graph always completes in one transmission.
	g, _ := rumor.Path(2)
	res, _ := rumor.RunAsync(g, 0, rumor.AsyncConfig{Protocol: rumor.PushPull}, rumor.NewRNG(1))
	fmt.Println(res.Complete, res.NumInformed)
	// Output: true 2
}

func ExampleNewSyncStepper() {
	g, _ := rumor.Complete(100)
	stepper, _ := rumor.NewSyncStepper(g, 0, rumor.SyncConfig{Protocol: rumor.PushPull}, rumor.NewRNG(7))
	// Run only until half the graph knows the rumor.
	for stepper.NumInformed() < 50 && stepper.Step() {
	}
	fmt.Println(stepper.NumInformed() >= 50, stepper.Result().Complete)
	// Output: true false
}

func ExampleQuantile() {
	times := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3}
	// The paper's T_q: smallest t with P[T <= t] >= q.
	fmt.Println(rumor.Quantile(times, 0.5), rumor.Quantile(times, 1.0))
	// Output: 3 9
}

func ExampleDiamondChain() {
	// The adversarial family: k diamonds with m parallel 2-paths each.
	g, _ := rumor.DiamondChain(4, 9)
	fmt.Println(g.NumNodes(), g.NumEdges(), rumor.Diameter(g))
	// Output: 41 72 8
}

func ExampleRunLowerCoupling() {
	g, _ := rumor.Complete(64)
	res, _ := rumor.RunLowerCoupling(g, 0, 42)
	// Lemma 13's invariant holds in every run, and each normal block maps
	// to exactly one synchronous round.
	fmt.Println(res.SubsetInvariantHeld, res.SequentialParallelAgreed, res.Rho >= 1)
	// Output: true true true
}

func ExampleConductanceExact() {
	// Two K_4 cliques joined by one edge: the bridge is the bottleneck.
	g, _ := rumor.Barbell(4, 0)
	phi, _ := rumor.ConductanceExact(g)
	fmt.Printf("%.4f\n", phi)
	// Output: 0.0769
}
