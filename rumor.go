// Package rumor is a simulation library for randomized rumor spreading,
// reproducing "How Asynchrony Affects Rumor Spreading Time" (Giakkoupis,
// Nazari, Woelfel; PODC 2016).
//
// The library provides:
//
//   - exact simulators for the synchronous push, pull, and push-pull
//     protocols and their asynchronous Poisson-clock variants (in the
//     paper's three equivalent views);
//   - the paper's auxiliary processes ppx and ppy (Definitions 5 and 7);
//   - executable versions of both coupling constructions (the Section 4
//     upper-bound ladder and the Section 5 block decomposition);
//   - graph generators for the families the paper discusses, including
//     the adversarial diamond chain with the extremal sync/async gap;
//   - a deterministic parallel experiment harness, statistics, and the
//     E1–E13 experiment suite that regenerates every claim (see
//     EXPERIMENTS.md).
//
// Quickstart:
//
//	g, _ := rumor.Hypercube(10)
//	rng := rumor.NewRNG(42)
//	sync, _ := rumor.RunSync(g, 0, rumor.SyncConfig{Protocol: rumor.PushPull}, rng)
//	async, _ := rumor.RunAsync(g, 0, rumor.AsyncConfig{Protocol: rumor.PushPull}, rng)
//	fmt.Printf("sync %d rounds, async %.2f time units\n", sync.Rounds, async.Time)
//
// All simulations are deterministic functions of (graph, source, config,
// seed); see the Runner type for parallel multi-trial measurement.
package rumor

import (
	"rumor/internal/core"
	"rumor/internal/coupling"
	"rumor/internal/graph"
	"rumor/internal/spectral"
	"rumor/internal/trace"
	"rumor/internal/xrand"
)

// Core protocol types, re-exported from the engine.
type (
	// Graph is an immutable simple undirected graph in CSR form.
	Graph = graph.Graph
	// NodeID identifies a vertex (0..n-1).
	NodeID = graph.NodeID
	// Builder accumulates edges and produces a Graph.
	Builder = graph.Builder
	// RNG is the deterministic random number generator used everywhere.
	RNG = xrand.RNG
	// Protocol selects push, pull, or push-pull communication.
	Protocol = core.Protocol
	// AsyncView selects among the three equivalent pp-a implementations.
	AsyncView = core.AsyncView
	// PPVariant selects the paper's auxiliary process ppx or ppy.
	PPVariant = core.PPVariant
	// SyncConfig configures a synchronous run.
	SyncConfig = core.SyncConfig
	// AsyncConfig configures an asynchronous run.
	AsyncConfig = core.AsyncConfig
	// SyncResult reports a synchronous run.
	SyncResult = core.SyncResult
	// AsyncResult reports an asynchronous run.
	AsyncResult = core.AsyncResult
	// Observer receives informing events during a run.
	Observer = core.Observer
	// Recorder collects informing events into a Trace.
	Recorder = trace.Recorder
	// Trace is an immutable record of one spreading execution.
	Trace = trace.Trace
	// UpperCouplingResult reports one run of the Section 4 coupling.
	UpperCouplingResult = coupling.UpperResult
	// LowerCouplingResult reports one run of the Section 5 coupling.
	LowerCouplingResult = coupling.LowerResult
	// SyncStepper advances a synchronous process one round at a time.
	SyncStepper = core.SyncStepper
	// AsyncStepper advances an asynchronous process one tick at a time.
	AsyncStepper = core.AsyncStepper
	// Curve is a spreading curve (informed fraction over time).
	Curve = core.Curve
	// Crash schedules a fail-stop node failure (extension).
	Crash = core.Crash
)

// Protocol constants.
const (
	// Push: informed callers push the rumor to their callee.
	Push = core.Push
	// Pull: uninformed callers pull the rumor from informed callees.
	Pull = core.Pull
	// PushPull: bidirectional exchange.
	PushPull = core.PushPull
)

// Asynchronous view constants (all distributionally identical).
const (
	// GlobalClock: one rate-n Poisson clock; O(1) per step.
	GlobalClock = core.GlobalClock
	// PerNodeClocks: one rate-1 clock per node.
	PerNodeClocks = core.PerNodeClocks
	// PerEdgeClocks: one rate-1/deg(v) clock per directed edge.
	PerEdgeClocks = core.PerEdgeClocks
)

// Auxiliary process constants (Definitions 5 and 7).
const (
	// PPX pulls with probability 1 once half the neighborhood is informed.
	PPX = core.PPX
	// PPY always pulls with probability 1 - e^{-2k/deg}.
	PPY = core.PPY
)

// NewRNG returns a deterministic generator seeded with seed.
func NewRNG(seed uint64) *RNG { return xrand.New(seed) }

// NewBuilder returns a graph builder for n vertices.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// NewRecorder returns an empty trace recorder (plug into Config.Observer).
func NewRecorder() *Recorder { return trace.NewRecorder() }

// RunSync executes a synchronous rumor spreading process.
func RunSync(g *Graph, src NodeID, cfg SyncConfig, rng *RNG) (*SyncResult, error) {
	return core.RunSync(g, src, cfg, rng)
}

// RunAsync executes an asynchronous rumor spreading process.
func RunAsync(g *Graph, src NodeID, cfg AsyncConfig, rng *RNG) (*AsyncResult, error) {
	return core.RunAsync(g, src, cfg, rng)
}

// RunPPVariant executes the paper's auxiliary process ppx or ppy.
func RunPPVariant(g *Graph, src NodeID, v PPVariant, cfg SyncConfig, rng *RNG) (*SyncResult, error) {
	return core.RunPPVariant(g, src, v, cfg, rng)
}

// SyncSpreadingTime returns T(protocol, G, u) in rounds.
func SyncSpreadingTime(g *Graph, src NodeID, p Protocol, rng *RNG) (int, error) {
	return core.SyncSpreadingTime(g, src, p, rng)
}

// AsyncSpreadingTime returns T(protocol-a, G, u) in time units.
func AsyncSpreadingTime(g *Graph, src NodeID, p Protocol, rng *RNG) (float64, error) {
	return core.AsyncSpreadingTime(g, src, p, rng)
}

// RunUpperCoupling executes the Section 4 coupling (ppx, ppy, pp-a on
// shared randomness) on a connected graph.
func RunUpperCoupling(g *Graph, src NodeID, seed uint64) (*UpperCouplingResult, error) {
	return coupling.RunUpper(g, src, seed)
}

// RunLowerCoupling executes the Section 5 block-decomposition coupling on
// a connected graph.
func RunLowerCoupling(g *Graph, src NodeID, seed uint64) (*LowerCouplingResult, error) {
	return coupling.RunLower(g, src, seed)
}

// RunSyncReference executes the synchronous process by the literal paper
// semantics (every node contacts every round) — the executable
// specification the optimized engine is validated against.
func RunSyncReference(g *Graph, src NodeID, cfg SyncConfig, rng *RNG) (*SyncResult, error) {
	return core.RunSyncReference(g, src, cfg, rng)
}

// NewSyncStepper prepares a synchronous process for round-by-round
// execution under caller control.
func NewSyncStepper(g *Graph, src NodeID, cfg SyncConfig, rng *RNG) (*SyncStepper, error) {
	return core.NewSyncStepper(g, src, cfg, rng)
}

// NewAsyncStepper prepares an asynchronous process (global-clock view)
// for tick-by-tick execution under caller control.
func NewAsyncStepper(g *Graph, src NodeID, cfg AsyncConfig, rng *RNG) (*AsyncStepper, error) {
	return core.NewAsyncStepper(g, src, cfg, rng)
}

// SpectralGapLazy estimates 1 - λ₂ of the lazy random walk on g (power
// iteration); via Cheeger's inequality it brackets the conductance Φ,
// which bounds rumor spreading times (and, by Theorem 1, carries over to
// the asynchronous protocol).
func SpectralGapLazy(g *Graph, iters int, rng *RNG) (float64, error) {
	return spectral.SpectralGapLazy(g, iters, rng)
}

// ConductanceExact computes Φ(G) exactly for graphs with at most 24
// nodes.
func ConductanceExact(g *Graph) (float64, error) { return spectral.ConductanceExact(g) }

// CheegerBounds converts a lazy-walk spectral gap into conductance
// bounds: gap ≤ Φ ≤ 2·sqrt(gap).
func CheegerBounds(gap float64) (lo, hi float64) { return spectral.CheegerBounds(gap) }

// VertexExpansionExact computes α(G) exactly for graphs with at most 24
// nodes (the parameter of the paper's reference [18], whose bounds carry
// over to pp-a by Theorem 1).
func VertexExpansionExact(g *Graph) (float64, error) { return spectral.VertexExpansionExact(g) }

// RunQuasirandomSync executes the quasirandom synchronous protocol
// (cyclic neighbor lists, one random offset per node — the model of the
// paper's reference [11]; extension).
func RunQuasirandomSync(g *Graph, src NodeID, cfg SyncConfig, rng *RNG) (*SyncResult, error) {
	return core.RunQuasirandomSync(g, src, cfg, rng)
}
