package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"rumor/internal/api"
	"rumor/internal/service"
)

// Event is one server-sent event from GET /v1/jobs/{id}/events,
// decoded into its typed payload.
type Event struct {
	// Type is the event name: api.EventState, api.EventCell, or
	// api.EventError.
	Type string
	// ID is the cell index for cell events (the SSE event id, i.e. the
	// resume cursor); -1 otherwise.
	ID int
	// Status is set for state events.
	Status *service.JobStatus
	// Result is set for cell events.
	Result *service.CellResult
	// Err is set for error events (the job failed or was cancelled).
	Err *api.Error
	// Data is the raw event payload.
	Data []byte
}

// EventStream iterates one SSE connection. The server closes the
// stream after the job's terminal state event (and error event, if
// any); Next then returns io.EOF. A transport drop surfaces as an
// error — reconnect with Client.Watch passing the last cell event's ID
// to resume.
type EventStream struct {
	body io.ReadCloser
	br   *bufio.Reader
}

// Next returns the next event, io.EOF at end of stream, or a transport
// error.
func (s *EventStream) Next() (*Event, error) {
	ev := &Event{ID: -1}
	var data []string
	dispatch := false
	for {
		line, err := s.br.ReadString('\n')
		if err != nil {
			// A partial line at EOF (or a mid-frame drop) is a broken
			// frame, not a clean end of stream.
			if err == io.EOF && line == "" && !dispatch {
				return nil, io.EOF
			}
			if err == io.EOF {
				return nil, io.ErrUnexpectedEOF
			}
			return nil, err
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "" {
			if !dispatch {
				continue // stray blank line between events
			}
			ev.Data = []byte(strings.Join(data, "\n"))
			return ev, s.decode(ev)
		}
		field, value, _ := strings.Cut(line, ":")
		value = strings.TrimPrefix(value, " ")
		switch field {
		case "event":
			ev.Type = value
			dispatch = true
		case "id":
			if id, err := strconv.Atoi(value); err == nil {
				ev.ID = id
			}
			dispatch = true
		case "data":
			data = append(data, value)
			dispatch = true
		}
	}
}

// decode fills the typed payload from ev.Data based on ev.Type.
func (s *EventStream) decode(ev *Event) error {
	switch ev.Type {
	case api.EventState:
		ev.Status = new(service.JobStatus)
		if err := json.Unmarshal(ev.Data, ev.Status); err != nil {
			return fmt.Errorf("client: decoding state event: %w", err)
		}
	case api.EventCell:
		ev.Result = new(service.CellResult)
		if err := json.Unmarshal(ev.Data, ev.Result); err != nil {
			return fmt.Errorf("client: decoding cell event: %w", err)
		}
	case api.EventError:
		var env api.Envelope
		if err := json.Unmarshal(ev.Data, &env); err != nil || env.Error == nil {
			return fmt.Errorf("client: decoding error event %q", ev.Data)
		}
		ev.Err = env.Error
	}
	return nil
}

// Close releases the connection.
func (s *EventStream) Close() error { return s.body.Close() }

// Watch opens the job's server-sent event stream: push notification of
// every state transition ("state" events) and cell completion ("cell"
// events, in canonical cell order). lastEventID resumes cell events
// after that index (-1 subscribes from the beginning — the standard
// EventSource reconnect semantics). The stream ends when the job
// reaches a terminal state.
func (c *Client) Watch(ctx context.Context, id string, lastEventID int) (*EventStream, error) {
	header := make(http.Header)
	header.Set("Accept", "text/event-stream")
	if lastEventID >= 0 {
		header.Set(api.LastEventIDHeader, strconv.Itoa(lastEventID))
	}
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/events", header, nil)
	if err != nil {
		return nil, err
	}
	return &EventStream{body: resp.Body, br: bufio.NewReaderSize(resp.Body, 1<<20)}, nil
}
