package client

import (
	"context"
	"io"
	"net/http"

	"rumor/internal/obs"
)

// PromMetrics scrapes GET /metrics and returns the parsed Prometheus
// exposition: families keyed by name, with typed lookup helpers
// (Scrape.Value, Scrape.Sum). It is the programmatic twin of pointing
// a Prometheus server at the daemon — tests and the CLI's -metrics-out
// use it to read latency histograms and cache counters without string
// munging. The endpoint exists only when the daemon runs with
// observability enabled (the default for cmd/rumord); a 404 comes back
// as an *api.Error.
func (c *Client) PromMetrics(ctx context.Context) (obs.Scrape, error) {
	resp, err := c.do(ctx, http.MethodGet, "/metrics", nil, nil)
	if err != nil {
		return nil, err
	}
	defer drain(resp)
	return obs.ParseText(resp.Body)
}

// PromMetricsText returns the raw Prometheus text exposition bytes —
// for callers that dump a scrape to a file (rumorsim -metrics-out)
// rather than query it.
func (c *Client) PromMetricsText(ctx context.Context) ([]byte, error) {
	resp, err := c.do(ctx, http.MethodGet, "/metrics", nil, nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}
