package client

import (
	"net/http"
	"testing"
	"time"
)

// TestWaitCapsShift pins the backoff schedule, in particular that huge
// attempt counts can never wrap the shift past zero into a small
// positive delay that slips under the maxWait clamp (the pre-fix bug:
// 100ms << 62 is a positive ~51ms).
func TestWaitCapsShift(t *testing.T) {
	c := &Client{backoff: 100 * time.Millisecond, maxWait: 2 * time.Second}
	cases := []struct {
		attempt int
		want    time.Duration
	}{
		{0, 100 * time.Millisecond},
		{1, 200 * time.Millisecond},
		{2, 400 * time.Millisecond},
		{4, 1600 * time.Millisecond},
		{5, 2 * time.Second}, // 3.2s clamps to the ceiling
		{10, 2 * time.Second},
		{62, 2 * time.Second}, // unchecked shift wraps to +51ms here
		{63, 2 * time.Second}, // ... and to 0 here
		{64, 2 * time.Second},
		{1 << 20, 2 * time.Second},
	}
	for _, tc := range cases {
		if got := c.wait(tc.attempt); got != tc.want {
			t.Errorf("wait(%d) = %v, want %v", tc.attempt, got, tc.want)
		}
	}

	// A 1ns initial delay needs ~61 doublings to cross a huge ceiling:
	// the loop must still terminate and clamp, never wrap negative.
	c = &Client{backoff: 1, maxWait: time.Duration(1) << 62}
	for _, attempt := range []int{62, 63, 100, 1 << 20} {
		if got := c.wait(attempt); got != c.maxWait {
			t.Errorf("wait(%d) with 1ns backoff = %v, want ceiling %v", attempt, got, c.maxWait)
		}
	}

	// Degenerate config: zero backoff falls through to the ceiling.
	c = &Client{backoff: 0, maxWait: time.Second}
	if got := c.wait(3); got != time.Second {
		t.Errorf("wait with zero backoff = %v, want 1s", got)
	}
}

// TestRetryAfterParsing pins the Retry-After grammar: strict
// delta-seconds, then the HTTP-date form, then the computed backoff.
// Garbage-suffixed values like "5xyz" must not parse as five seconds
// (the pre-fix Sscanf accepted them).
func TestRetryAfterParsing(t *testing.T) {
	c := &Client{backoff: 100 * time.Millisecond, maxWait: 2 * time.Second}
	resp := func(v string) *http.Response {
		h := make(http.Header)
		if v != "" {
			h.Set("Retry-After", v)
		}
		return &http.Response{Header: h}
	}

	cases := []struct {
		header string
		want   time.Duration
	}{
		{"", 100 * time.Millisecond},                           // absent: backoff(0)
		{"3", 3 * time.Second},                                 // delta-seconds
		{"0", 0},                                               // immediate retry
		{" 2 ", 2 * time.Second},                               // tolerate surrounding space
		{"5xyz", 100 * time.Millisecond},                       // garbage suffix: NOT 5s
		{"-7", 100 * time.Millisecond},                         // negative: backoff
		{"1.5", 100 * time.Millisecond},                        // fractional is not in the grammar
		{"soon", 100 * time.Millisecond},                       // not a date either
		{"5 5", 100 * time.Millisecond},                        // two tokens
		{"\t6\n", 6 * time.Second},                             // trimmed whitespace
		{"99999999999999999999999999", 100 * time.Millisecond}, // overflow
	}
	for _, tc := range cases {
		if got := c.retryAfter(resp(tc.header), 0); got != tc.want {
			t.Errorf("retryAfter(%q) = %v, want %v", tc.header, got, tc.want)
		}
	}

	// HTTP-date in the future: a positive delay no longer than the
	// stated horizon (it shrinks by the time elapsed since formatting).
	future := time.Now().Add(30 * time.Second).UTC().Format(http.TimeFormat)
	if got := c.retryAfter(resp(future), 0); got <= 0 || got > 30*time.Second {
		t.Errorf("retryAfter(future date) = %v, want (0, 30s]", got)
	}
	// HTTP-date in the past: retry immediately, never a negative sleep.
	past := time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat)
	if got := c.retryAfter(resp(past), 0); got != 0 {
		t.Errorf("retryAfter(past date) = %v, want 0", got)
	}

	// The fallback honours the attempt count.
	if got := c.retryAfter(resp("nonsense"), 3); got != 800*time.Millisecond {
		t.Errorf("retryAfter fallback attempt 3 = %v, want 800ms", got)
	}
}
