package client

import (
	"net/http"
	"testing"
	"time"
)

// TestWaitCapsShift pins the deterministic backoff-ceiling schedule,
// in particular that huge attempt counts can never wrap the shift past
// zero into a small positive delay that slips under the maxWait clamp
// (the pre-fix bug: 100ms << 62 is a positive ~51ms).
func TestWaitCapsShift(t *testing.T) {
	c := &Client{backoff: 100 * time.Millisecond, maxWait: 2 * time.Second}
	cases := []struct {
		attempt int
		want    time.Duration
	}{
		{0, 100 * time.Millisecond},
		{1, 200 * time.Millisecond},
		{2, 400 * time.Millisecond},
		{4, 1600 * time.Millisecond},
		{5, 2 * time.Second}, // 3.2s clamps to the ceiling
		{10, 2 * time.Second},
		{62, 2 * time.Second}, // unchecked shift wraps to +51ms here
		{63, 2 * time.Second}, // ... and to 0 here
		{64, 2 * time.Second},
		{1 << 20, 2 * time.Second},
	}
	for _, tc := range cases {
		if got := c.backoffCap(tc.attempt); got != tc.want {
			t.Errorf("backoffCap(%d) = %v, want %v", tc.attempt, got, tc.want)
		}
	}

	// A 1ns initial delay needs ~61 doublings to cross a huge ceiling:
	// the loop must still terminate and clamp, never wrap negative.
	c = &Client{backoff: 1, maxWait: time.Duration(1) << 62}
	for _, attempt := range []int{62, 63, 100, 1 << 20} {
		if got := c.backoffCap(attempt); got != c.maxWait {
			t.Errorf("backoffCap(%d) with 1ns backoff = %v, want ceiling %v", attempt, got, c.maxWait)
		}
	}

	// Degenerate config: zero backoff falls through to the ceiling.
	c = &Client{backoff: 0, maxWait: time.Second}
	if got := c.backoffCap(3); got != time.Second {
		t.Errorf("backoffCap with zero backoff = %v, want 1s", got)
	}
}

// TestWaitFullJitterBounds pins the jittered delay to its bounds: for
// every attempt, wait() is uniform in [0, backoffCap(attempt)] — the
// extremes of the jitter source map exactly onto the interval ends,
// and the capped-shift behaviour (attempt >= 62) still bounds the
// interval by maxWait.
func TestWaitFullJitterBounds(t *testing.T) {
	c := &Client{backoff: 100 * time.Millisecond, maxWait: 2 * time.Second}
	cases := []struct {
		attempt int
		cap     time.Duration
	}{
		{0, 100 * time.Millisecond},
		{1, 200 * time.Millisecond},
		{3, 800 * time.Millisecond},
		{5, 2 * time.Second},
		{62, 2 * time.Second}, // the shift cap keeps the interval sane
		{1 << 20, 2 * time.Second},
	}
	for _, tc := range cases {
		// Jitter source at its minimum: the delay is 0 (full jitter
		// deliberately allows an immediate retry).
		c.randInt64n = func(n int64) int64 {
			if n != int64(tc.cap)+1 {
				t.Errorf("wait(%d) drew from [0, %d), want [0, %d)", tc.attempt, n, int64(tc.cap)+1)
			}
			return 0
		}
		if got := c.wait(tc.attempt); got != 0 {
			t.Errorf("wait(%d) with min jitter = %v, want 0", tc.attempt, got)
		}
		// Jitter source at its maximum: the delay is exactly the cap.
		c.randInt64n = func(n int64) int64 { return n - 1 }
		if got := c.wait(tc.attempt); got != tc.cap {
			t.Errorf("wait(%d) with max jitter = %v, want %v", tc.attempt, got, tc.cap)
		}
	}
}

// TestWaitJitterIsActuallyRandom runs the real jitter source and
// checks the samples stay in bounds and are not all identical — the
// pre-jitter schedule was fully deterministic, so a restarted
// coordinator's retries against its peers arrived in lockstep waves.
func TestWaitJitterIsActuallyRandom(t *testing.T) {
	c := &Client{backoff: 100 * time.Millisecond, maxWait: 2 * time.Second}
	const attempt = 3 // cap = 800ms
	cap := c.backoffCap(attempt)
	seen := make(map[time.Duration]bool)
	for i := 0; i < 256; i++ {
		d := c.wait(attempt)
		if d < 0 || d > cap {
			t.Fatalf("wait(%d) = %v outside [0, %v]", attempt, d, cap)
		}
		seen[d] = true
	}
	if len(seen) < 2 {
		t.Fatalf("256 jittered waits produced %d distinct value(s); jitter is not applied", len(seen))
	}
}

// TestRetryAfterParsing pins the Retry-After grammar: strict
// delta-seconds, then the HTTP-date form, then the computed backoff.
// Garbage-suffixed values like "5xyz" must not parse as five seconds
// (the pre-fix Sscanf accepted them).
func TestRetryAfterParsing(t *testing.T) {
	// Pin the jitter source to its maximum so the backoff fallback is
	// the deterministic cap; the jitter itself is covered by
	// TestWaitFullJitterBounds.
	c := &Client{
		backoff:    100 * time.Millisecond,
		maxWait:    2 * time.Second,
		randInt64n: func(n int64) int64 { return n - 1 },
	}
	resp := func(v string) *http.Response {
		h := make(http.Header)
		if v != "" {
			h.Set("Retry-After", v)
		}
		return &http.Response{Header: h}
	}

	cases := []struct {
		header string
		want   time.Duration
	}{
		{"", 100 * time.Millisecond},                           // absent: backoff(0)
		{"3", 3 * time.Second},                                 // delta-seconds
		{"0", 0},                                               // immediate retry
		{" 2 ", 2 * time.Second},                               // tolerate surrounding space
		{"5xyz", 100 * time.Millisecond},                       // garbage suffix: NOT 5s
		{"-7", 100 * time.Millisecond},                         // negative: backoff
		{"1.5", 100 * time.Millisecond},                        // fractional is not in the grammar
		{"soon", 100 * time.Millisecond},                       // not a date either
		{"5 5", 100 * time.Millisecond},                        // two tokens
		{"\t6\n", 6 * time.Second},                             // trimmed whitespace
		{"99999999999999999999999999", 100 * time.Millisecond}, // overflow
	}
	for _, tc := range cases {
		if got := c.retryAfter(resp(tc.header), 0); got != tc.want {
			t.Errorf("retryAfter(%q) = %v, want %v", tc.header, got, tc.want)
		}
	}

	// HTTP-date in the future: a positive delay no longer than the
	// stated horizon (it shrinks by the time elapsed since formatting).
	future := time.Now().Add(30 * time.Second).UTC().Format(http.TimeFormat)
	if got := c.retryAfter(resp(future), 0); got <= 0 || got > 30*time.Second {
		t.Errorf("retryAfter(future date) = %v, want (0, 30s]", got)
	}
	// HTTP-date in the past: retry immediately, never a negative sleep.
	past := time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat)
	if got := c.retryAfter(resp(past), 0); got != 0 {
		t.Errorf("retryAfter(past date) = %v, want 0", got)
	}

	// The fallback honours the attempt count.
	if got := c.retryAfter(resp("nonsense"), 3); got != 800*time.Millisecond {
		t.Errorf("retryAfter fallback attempt 3 = %v, want 800ms", got)
	}
}
