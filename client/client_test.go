package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"rumor/client"
	"rumor/client/clienttest"
	"rumor/internal/api"
	"rumor/internal/experiments"
	"rumor/internal/service"
)

// newService spins up a full rumord HTTP surface (jobs + experiments)
// and an SDK client for it.
func newService(t *testing.T, cfg service.SchedulerConfig, opts ...client.Option) (*client.Client, *service.Scheduler) {
	t.Helper()
	sched := service.NewScheduler(cfg)
	srv := service.NewServer(sched)
	experiments.Mount(srv, sched)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = sched.Shutdown(ctx)
	})
	c, err := client.New(ts.URL, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c, sched
}

func smallGrid() service.JobSpec {
	return service.JobSpec{
		Families:  []string{"complete", "star"},
		Sizes:     []int{16, 32},
		Protocols: []string{"push-pull"},
		Timings:   []string{service.TimingSync, service.TimingAsync},
		Trials:    5,
		Seed:      7,
	}
}

func TestNewRejectsBadURL(t *testing.T) {
	for _, raw := range []string{"", "not a url\x7f", "localhost:8080"} {
		if _, err := client.New(raw); err == nil {
			t.Errorf("New(%q) accepted", raw)
		}
	}
}

// TestSubmitRetriesBackpressure: 429 + Retry-After is retried with
// backoff until the queue accepts, invisible to the caller.
func TestSubmitRetriesBackpressure(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			api.WriteError(w, http.StatusTooManyRequests, api.CodeQueueFull, "service: queue full")
			return
		}
		api.WriteJSON(w, http.StatusAccepted, service.JobStatus{ID: "job-00000001", State: service.JobQueued})
	}))
	defer ts.Close()
	c, err := client.New(ts.URL, client.WithBackoff(time.Millisecond, 10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.SubmitJob(context.Background(), smallGrid())
	if err != nil {
		t.Fatalf("submit after backpressure: %v", err)
	}
	if st.ID != "job-00000001" || calls.Load() != 3 {
		t.Errorf("status %+v after %d calls", st, calls.Load())
	}
}

// TestSubmitRetryBudgetExhausted: permanent backpressure surfaces as
// the typed queue_full error once the retry budget is spent.
func TestSubmitRetryBudgetExhausted(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		api.WriteError(w, http.StatusTooManyRequests, api.CodeQueueFull, "service: queue full")
	}))
	defer ts.Close()
	c, err := client.New(ts.URL, client.WithRetries(2), client.WithBackoff(time.Millisecond, 2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.SubmitJob(context.Background(), smallGrid())
	if !api.IsCode(err, api.CodeQueueFull) {
		t.Fatalf("err = %v, want queue_full", err)
	}
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.HTTPStatus != http.StatusTooManyRequests {
		t.Errorf("err %v did not preserve the HTTP status", err)
	}
}

// TestTypedErrors: non-2xx envelopes decode into *api.Error with the
// stable code.
func TestTypedErrors(t *testing.T) {
	c, _ := newService(t, service.SchedulerConfig{Workers: 1})
	ctx := context.Background()
	if _, err := c.Job(ctx, "job-999"); !api.IsCode(err, api.CodeJobNotFound) {
		t.Errorf("unknown job: %v", err)
	}
	if _, err := c.SubmitJob(ctx, service.JobSpec{Families: []string{"nope"}, Sizes: []int{8},
		Protocols: []string{"push"}, Timings: []string{"sync"}, Trials: 1}); !api.IsCode(err, api.CodeInvalidSpec) {
		t.Errorf("invalid spec: %v", err)
	}
	if _, err := c.RunExperiment(ctx, "e99", client.RunExperimentRequest{}, nil); !api.IsCode(err, api.CodeExperimentNotFound) {
		t.Errorf("unknown experiment: %v", err)
	}
}

// TestStreamResultsResumesAfterCut: a mid-row transport cut is healed
// by cursor resume — every row delivered exactly once, in order.
func TestStreamResultsResumesAfterCut(t *testing.T) {
	cut := &clienttest.CutOnceTransport{Match: "/results", After: 700}
	c, _ := newService(t, service.SchedulerConfig{Workers: 2},
		client.WithHTTPClient(&http.Client{Transport: cut}),
		client.WithBackoff(time.Millisecond, 10*time.Millisecond))
	ctx := context.Background()
	st, err := c.SubmitJob(ctx, smallGrid())
	if err != nil {
		t.Fatal(err)
	}
	var indexes []int
	if err := c.StreamResults(ctx, st.ID, -1, func(res *service.CellResult) error {
		indexes = append(indexes, res.Index)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if cut.Cuts() != 1 {
		t.Fatalf("transport cut %d streams, want 1", cut.Cuts())
	}
	if len(indexes) != 8 {
		t.Fatalf("delivered %d rows, want 8", len(indexes))
	}
	for i, idx := range indexes {
		if idx != i {
			t.Fatalf("row %d has index %d: duplicate or dropped delivery across the cut", i, idx)
		}
	}
}

// TestRunCellsIdempotentReplay: RunCells keys its submit by the spec
// hash, so running the same cells twice binds to one server-side job
// and returns identical results.
func TestRunCellsIdempotentReplay(t *testing.T) {
	c, _ := newService(t, service.SchedulerConfig{Workers: 2})
	ctx := context.Background()
	cells := smallGrid().Cells()
	first, err := c.RunCells(ctx, cells)
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.RunCells(ctx, cells)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := c.Jobs(ctx, client.JobsQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 {
		t.Errorf("idempotent reruns created %d jobs, want 1", len(jobs))
	}
	a, _ := json.Marshal(first)
	b, _ := json.Marshal(second)
	if string(a) != string(b) {
		t.Error("replayed RunCells returned different results")
	}
}

// TestJobsQuery: state filter and pagination through the SDK.
func TestJobsQuery(t *testing.T) {
	c, _ := newService(t, service.SchedulerConfig{Workers: 2})
	ctx := context.Background()
	var ids []string
	for i := 0; i < 3; i++ {
		spec := smallGrid()
		spec.Seed = uint64(50 + i)
		st, err := c.SubmitJob(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
		if err := c.StreamResults(ctx, st.ID, -1, func(*service.CellResult) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	done, err := c.Jobs(ctx, client.JobsQuery{State: service.JobDone})
	if err != nil || len(done) != 3 {
		t.Fatalf("done jobs = %d (%v), want 3", len(done), err)
	}
	page, err := c.Jobs(ctx, client.JobsQuery{Limit: 2})
	if err != nil || len(page) != 2 {
		t.Fatalf("page 1 = %d (%v), want 2", len(page), err)
	}
	rest, err := c.Jobs(ctx, client.JobsQuery{After: page[1].ID})
	if err != nil || len(rest) != 1 || rest[0].ID != ids[2] {
		t.Fatalf("page 2 = %+v (%v)", rest, err)
	}
	none, err := c.Jobs(ctx, client.JobsQuery{State: service.JobRunning})
	if err != nil || len(none) != 0 {
		t.Fatalf("running jobs = %d (%v), want 0", len(none), err)
	}
}

// TestWatchLive: subscribing before the job finishes delivers every
// cell event in canonical order, interleaved with state transitions,
// and the stream closes after the terminal state.
func TestWatchLive(t *testing.T) {
	c, _ := newService(t, service.SchedulerConfig{Workers: 1})
	ctx := context.Background()
	// Cycle spreading is Θ(n) rounds: slow enough that the watch
	// reliably attaches while the job is still running.
	spec := service.JobSpec{
		Families:  []string{"cycle"},
		Sizes:     []int{400, 600},
		Protocols: []string{"push-pull"},
		Timings:   []string{service.TimingSync, service.TimingAsync},
		Trials:    60,
		Seed:      7,
	}
	st, err := c.SubmitJob(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	watch, err := c.Watch(ctx, st.ID, -1)
	if err != nil {
		t.Fatal(err)
	}
	defer watch.Close()
	cells := 0
	sawRunning := false
	var last *client.Event
	for {
		ev, err := watch.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		switch ev.Type {
		case api.EventCell:
			if ev.ID != cells || ev.Result == nil || ev.Result.Index != cells {
				t.Fatalf("cell event out of order: want %d, got id %d (%+v)", cells, ev.ID, ev.Result)
			}
			cells++
		case api.EventState:
			if ev.Status.State == service.JobRunning {
				sawRunning = true
			}
		}
		last = ev
	}
	if cells != 4 {
		t.Errorf("watch delivered %d cell events, want 4", cells)
	}
	if !sawRunning {
		t.Error("watch never saw the running state")
	}
	if last == nil || last.Type != api.EventState || last.Status.State != service.JobDone {
		t.Errorf("last event = %+v, want terminal done state", last)
	}

	// Resuming the watch after the last cell replays only the terminal
	// state.
	resumed, err := c.Watch(ctx, st.ID, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	for {
		ev, err := resumed.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if ev.Type == api.EventCell {
			t.Fatalf("resumed watch replayed cell %d", ev.ID)
		}
	}
}

// TestWatchCancelledJob: the event stream of a cancelled job ends with
// a typed error event.
func TestWatchCancelledJob(t *testing.T) {
	c, _ := newService(t, service.SchedulerConfig{Workers: 1})
	ctx := context.Background()
	slow := service.JobSpec{
		Families:  []string{"cycle"},
		Sizes:     []int{2000, 3000},
		Protocols: []string{"push-pull"},
		Timings:   []string{service.TimingSync, service.TimingAsync},
		Trials:    300,
		Seed:      1,
	}
	st, err := c.SubmitJob(ctx, slow)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CancelJob(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	watch, err := c.Watch(ctx, st.ID, -1)
	if err != nil {
		t.Fatal(err)
	}
	defer watch.Close()
	var sawError bool
	for {
		ev, err := watch.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if ev.Type == api.EventError {
			sawError = true
			if ev.Err == nil || ev.Err.Code != api.CodeJobCancelled {
				t.Errorf("error event = %+v, want job_cancelled", ev.Err)
			}
		}
	}
	if !sawError {
		t.Error("cancelled job's watch ended without an error event")
	}
}

// TestCacheStatsAndMetrics: the read-only snapshots decode through the
// SDK.
func TestCacheStatsAndMetrics(t *testing.T) {
	c, _ := newService(t, service.SchedulerConfig{
		Workers: 2, Results: service.NewResultCache(64), Graphs: service.NewGraphCache(8),
	})
	ctx := context.Background()
	if h, err := c.Health(ctx); err != nil || h.Status != "ok" {
		t.Fatalf("health = %+v, %v", h, err)
	}
	if _, err := c.RunCells(ctx, smallGrid().Cells()); err != nil {
		t.Fatal(err)
	}
	snap, err := c.CacheStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.ResultCache == nil || snap.ResultCache.Size == 0 {
		t.Errorf("cache snapshot = %+v", snap.ResultCache)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.CellsComputed != 8 || m.Workers != 2 {
		t.Errorf("metrics = %+v", m)
	}
	infos, err := c.Experiments(ctx)
	if err != nil || len(infos) != 16 {
		t.Fatalf("experiments listing: %d entries (%v)", len(infos), err)
	}
}

// TestStreamResultsFailedJob: a job that fails mid-stream surfaces the
// typed job_failed error, not a transport error (so the SDK does not
// try to resume it).
func TestStreamResultsFailedJob(t *testing.T) {
	c, _ := newService(t, service.SchedulerConfig{Workers: 1})
	ctx := context.Background()
	// A multi-source cell with an out-of-range extra source fails its
	// cell deterministically.
	cells := []service.CellSpec{
		{Family: "complete", N: 16, Protocol: "push", Timing: "sync", Trials: 2,
			GraphSeed: 1, TrialSeed: 1},
		{Family: "complete", N: 16, Protocol: "push", Timing: "sync", Trials: 2,
			GraphSeed: 1, TrialSeed: 2, ExtraSources: []int{9999}},
	}
	st, err := c.SubmitJob(ctx, service.JobSpec{CellList: cells})
	if err != nil {
		t.Fatal(err)
	}
	err = c.StreamResults(ctx, st.ID, -1, func(*service.CellResult) error { return nil })
	if !api.IsCode(err, api.CodeJobFailed) {
		t.Fatalf("failed job streamed err = %v, want job_failed", err)
	}
}

// TestRunExperimentOutcome: the typed experiment run returns the same
// outcome the in-process reducer computes.
func TestRunExperimentOutcome(t *testing.T) {
	c, _ := newService(t, service.SchedulerConfig{Workers: 2})
	ctx := context.Background()
	got, err := c.RunExperiment(ctx, "e12", client.RunExperimentRequest{Quick: true, Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	e, err := experiments.ByID("e12")
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.Run(experiments.Config{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != want.ID || got.Verdict != want.Verdict.String() || got.Summary != want.Summary {
		t.Errorf("SDK outcome %+v differs from local %+v", got, want)
	}
}
