// Package client is the typed Go SDK for the rumord batch simulation
// service — the one way anything in this repository (the rumorsim CLI,
// cmd/experiments -server, tests, and future rumord peers) talks to a
// rumord server. It wraps the resource-oriented v1 API in typed calls
// that share the service package's own types, decodes the structured
// error envelope into api.Error values (match with api.IsCode), retries
// 429 backpressure with context-aware backoff, resumes dropped result
// streams from a cursor without recomputation, and consumes the
// server-sent job event stream.
//
// Quickstart:
//
//	c, err := client.New("http://localhost:8080")
//	...
//	results, err := c.RunCells(ctx, cells) // submit + resumable stream
//
// Client implements service.CellRunner, so anything that runs cell
// grids locally (experiments.Config.Runner, harness code) runs them on
// a server by swapping in a Client.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"rumor/internal/api"
	"rumor/internal/service"
)

// Client talks to one rumord server. It is safe for concurrent use.
type Client struct {
	base    *url.URL
	hc      *http.Client
	retries int           // extra attempts for retryable requests
	backoff time.Duration // first retry delay; doubles per attempt
	maxWait time.Duration // backoff ceiling

	// randInt64n overrides the jitter source (uniform in [0, n));
	// nil selects math/rand/v2. Test hook.
	randInt64n func(n int64) int64
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient sets the underlying *http.Client (custom transports,
// fault injection in tests, timeouts). Streaming calls hold the
// response body open, so the client's Timeout should be zero (use
// per-call contexts for deadlines).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithRetries sets how many times a retryable request (backpressure,
// transport errors on resumable/idempotent calls) is reattempted after
// its first failure. Default 5; 0 disables retries.
func WithRetries(n int) Option {
	return func(c *Client) { c.retries = n }
}

// WithBackoff sets the first retry delay and its ceiling; the ceiling
// for an attempt doubles per consecutive failure and the actual sleep
// is full-jittered — uniform in [0, ceiling] — so retries from clients
// that failed together do not stay synchronized. Defaults: 100ms,
// capped at 2s.
func WithBackoff(initial, max time.Duration) Option {
	return func(c *Client) { c.backoff, c.maxWait = initial, max }
}

// New returns a client for the server at baseURL (e.g.
// "http://localhost:8080").
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: parsing base URL: %w", err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: base URL %q needs a scheme and host", baseURL)
	}
	c := &Client{
		base:    u,
		hc:      http.DefaultClient,
		retries: 5,
		backoff: 100 * time.Millisecond,
		maxWait: 2 * time.Second,
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// BaseURL returns the server base URL the client was built with.
func (c *Client) BaseURL() string { return c.base.String() }

// url joins path (and optional query) onto the base URL.
func (c *Client) url(path string) string {
	return strings.TrimRight(c.base.String(), "/") + path
}

// sleep waits for d or until ctx is done.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// backoffCap returns the deterministic backoff ceiling for the
// attempt-th consecutive failure (attempt counts from 0). The delay
// doubles per attempt but stops doubling once it reaches the ceiling:
// a single unchecked `backoff << attempt` wraps past zero for large
// attempts and can land on a small positive value that slips under the
// ceiling clamp.
func (c *Client) backoffCap(attempt int) time.Duration {
	d := c.backoff
	for ; attempt > 0 && d > 0 && d < c.maxWait; attempt-- {
		d <<= 1
	}
	if d <= 0 || d > c.maxWait {
		d = c.maxWait
	}
	return d
}

// wait returns the actual backoff delay for the attempt-th consecutive
// failure: full jitter over backoffCap, i.e. uniform in
// [0, backoffCap(attempt)]. Without jitter every client that failed at
// the same moment retries at the same moment — a restarted server (or
// a coordinator whose peers all rebooted) then takes the whole herd's
// retries in synchronized waves. Full jitter decorrelates them while
// keeping the same worst-case delay schedule.
func (c *Client) wait(attempt int) time.Duration {
	d := c.backoffCap(attempt)
	if d <= 0 {
		return 0
	}
	return time.Duration(c.rand64n(int64(d) + 1))
}

// rand64n returns a uniform value in [0, n). The randInt64n hook lets
// tests pin the jitter bounds.
func (c *Client) rand64n(n int64) int64 {
	if c.randInt64n != nil {
		return c.randInt64n(n)
	}
	return rand.Int64N(n)
}

// retryAfter honours a 429's Retry-After — the delta-seconds form
// parsed strictly (a garbage-suffixed value like "5xyz" is not five
// seconds), then the HTTP-date form — falling back to the computed
// backoff when the header is absent or unparseable.
func (c *Client) retryAfter(resp *http.Response, attempt int) time.Duration {
	if raw := strings.TrimSpace(resp.Header.Get("Retry-After")); raw != "" {
		if secs, err := strconv.Atoi(raw); err == nil {
			if secs >= 0 {
				return time.Duration(secs) * time.Second
			}
		} else if at, err := http.ParseTime(raw); err == nil {
			if d := time.Until(at); d > 0 {
				return d
			}
			return 0
		}
	}
	return c.wait(attempt)
}

// do issues one API request, retrying 429 backpressure (any method —
// a rejected submit enqueued nothing) and transport errors (only for
// requests that are safe to reissue: GETs, and submits carrying an
// Idempotency-Key). The response has a 2xx status; everything else
// comes back as an *api.Error.
func (c *Client) do(ctx context.Context, method, path string, header http.Header, body []byte) (*http.Response, error) {
	idempotent := method == http.MethodGet || method == http.MethodDelete ||
		header.Get(api.IdempotencyKeyHeader) != ""
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, method, c.url(path), bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		for k, vs := range header {
			req.Header[k] = vs
		}
		if len(body) > 0 {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			if idempotent && attempt < c.retries && ctx.Err() == nil {
				if err := sleep(ctx, c.wait(attempt)); err == nil {
					continue
				}
			}
			return nil, err
		}
		if resp.StatusCode == http.StatusTooManyRequests && attempt < c.retries {
			d := c.retryAfter(resp, attempt)
			drain(resp)
			if err := sleep(ctx, d); err != nil {
				return nil, err
			}
			continue
		}
		if resp.StatusCode >= 400 {
			defer drain(resp)
			return nil, decodeError(resp)
		}
		return resp, nil
	}
}

// doJSON issues the request and decodes the JSON response into out
// (which may be nil to discard).
func (c *Client) doJSON(ctx context.Context, method, path string, header http.Header, body []byte, out interface{}) error {
	resp, err := c.do(ctx, method, path, header, body)
	if err != nil {
		return err
	}
	defer drain(resp)
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// drain consumes and closes the body so the connection is reusable.
func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}

// decodeError turns a non-2xx response into an *api.Error, preserving
// the stable code from the envelope (api.IsCode matches it) and the
// HTTP status.
func decodeError(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var env api.Envelope
	if err := json.Unmarshal(data, &env); err == nil && env.Error != nil && env.Error.Code != "" {
		env.Error.HTTPStatus = resp.StatusCode
		return env.Error
	}
	return &api.Error{
		Code:       api.CodeInternal,
		Message:    fmt.Sprintf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(data)),
		HTTPStatus: resp.StatusCode,
	}
}

// Health checks the server's liveness endpoint and returns its build
// identity (uptime, Go version, VCS revision).
func (c *Client) Health(ctx context.Context) (api.Health, error) {
	var h api.Health
	err := c.doJSON(ctx, http.MethodGet, "/healthz", nil, nil, &h)
	return h, err
}

// Metrics returns the scheduler + cache metrics snapshot.
func (c *Client) Metrics(ctx context.Context) (service.Metrics, error) {
	var m service.Metrics
	err := c.doJSON(ctx, http.MethodGet, "/metricsz", nil, nil, &m)
	return m, err
}

// CacheStats returns the cache-tier snapshot (GET /v1/cache).
func (c *Client) CacheStats(ctx context.Context) (service.CacheSnapshot, error) {
	var snap service.CacheSnapshot
	err := c.doJSON(ctx, http.MethodGet, "/v1/cache", nil, nil, &snap)
	return snap, err
}

// SubmitOption configures a job submission.
type SubmitOption func(*http.Header)

// WithIdempotencyKey makes the submit replayable: a resubmit with the
// same key and spec returns the original job instead of enqueueing a
// duplicate, and lets the SDK safely retry the POST on transport
// errors.
func WithIdempotencyKey(key string) SubmitOption {
	return func(h *http.Header) { h.Set(api.IdempotencyKeyHeader, key) }
}

// SubmitJob submits a job spec and returns its status snapshot (202 on
// a fresh enqueue, 200 on an idempotent replay — both decode the same
// way). Backpressure (queue_full) is retried with backoff; other
// rejections come back as *api.Error.
func (c *Client) SubmitJob(ctx context.Context, spec service.JobSpec, opts ...SubmitOption) (service.JobStatus, error) {
	header := make(http.Header)
	for _, o := range opts {
		o(&header)
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return service.JobStatus{}, err
	}
	var st service.JobStatus
	err = c.doJSON(ctx, http.MethodPost, "/v1/jobs", header, body, &st)
	return st, err
}

// Job returns one job's status.
func (c *Client) Job(ctx context.Context, id string) (service.JobStatus, error) {
	var st service.JobStatus
	err := c.doJSON(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, nil, &st)
	return st, err
}

// JobsQuery narrows and pages the jobs listing; the zero value lists
// everything.
type JobsQuery struct {
	// State keeps only jobs in this state ("queued", "running", "done",
	// "failed", "cancelled"); empty keeps all.
	State service.JobState
	// After is a job-ID pagination cursor: only jobs submitted after it
	// are returned. Page through a long listing by passing the last ID
	// of the previous page.
	After string
	// Limit bounds the page size (0 = unbounded).
	Limit int
}

// Jobs lists job statuses in submission order, optionally filtered and
// paginated.
func (c *Client) Jobs(ctx context.Context, q JobsQuery) ([]service.JobStatus, error) {
	v := url.Values{}
	if q.State != "" {
		v.Set("state", string(q.State))
	}
	if q.After != "" {
		v.Set("after", q.After)
	}
	if q.Limit > 0 {
		v.Set("limit", fmt.Sprint(q.Limit))
	}
	path := "/v1/jobs"
	if len(v) > 0 {
		path += "?" + v.Encode()
	}
	var jobs []service.JobStatus
	err := c.doJSON(ctx, http.MethodGet, path, nil, nil, &jobs)
	return jobs, err
}

// CancelJob cancels a job and returns its resulting status.
func (c *Client) CancelJob(ctx context.Context, id string) (service.JobStatus, error) {
	var st service.JobStatus
	err := c.doJSON(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, nil, &st)
	return st, err
}
