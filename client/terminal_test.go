package client_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rumor/client"
	"rumor/internal/service"
)

// streamServer serves one results stream per GET: a valid first row,
// then the given bad payload, counting connections.
func streamServer(t *testing.T, badRow string) (*client.Client, *atomic.Int64) {
	t.Helper()
	var conns atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasSuffix(r.URL.Path, "/results") {
			http.NotFound(w, r)
			return
		}
		conns.Add(1)
		w.Header().Set("Content-Type", "application/x-ndjson")
		_, _ = w.Write([]byte(`{"index":0,"key":"k0"}` + "\n"))
		_, _ = w.Write([]byte(badRow + "\n"))
	}))
	t.Cleanup(ts.Close)
	c, err := client.New(ts.URL,
		client.WithRetries(3),
		client.WithBackoff(time.Millisecond, 5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	return c, &conns
}

// TestStreamResultsMalformedRowIsTerminal: a row that cannot decode
// re-fails identically on every reconnect, so StreamResults must
// surface the decode error after exactly one connection instead of
// draining the retry budget.
func TestStreamResultsMalformedRowIsTerminal(t *testing.T) {
	c, conns := streamServer(t, `{"index":1,`) // truncated JSON object
	rows := 0
	err := c.StreamResults(context.Background(), "job-1", -1, func(res *service.CellResult) error {
		rows++
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "decoding result row") {
		t.Fatalf("err = %v, want a decode error", err)
	}
	if rows != 1 {
		t.Errorf("delivered %d rows before the bad one, want 1", rows)
	}
	if got := conns.Load(); got != 1 {
		t.Errorf("opened %d connections, want 1 (decode errors must not reconnect)", got)
	}
}

// TestStreamResultsOversizedRowIsTerminal: a row past the scanner cap
// surfaces bufio.ErrTooLong; pre-fix that was classified as a
// transport drop and retried into the same wall retries+1 times.
func TestStreamResultsOversizedRowIsTerminal(t *testing.T) {
	if testing.Short() {
		t.Skip("streams a >16MiB row")
	}
	// The scanner cap is 16MiB; pad one row past it.
	huge := `{"index":1,"key":"` + strings.Repeat("a", 17<<20) + `"}`
	c, conns := streamServer(t, huge)
	rows := 0
	err := c.StreamResults(context.Background(), "job-1", -1, func(res *service.CellResult) error {
		rows++
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "scanner cap") {
		t.Fatalf("err = %v, want the scanner-cap error", err)
	}
	if rows != 1 {
		t.Errorf("delivered %d rows before the oversized one, want 1", rows)
	}
	if got := conns.Load(); got != 1 {
		t.Errorf("opened %d connections, want 1 (oversized rows must not reconnect)", got)
	}
}
