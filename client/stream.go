package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"rumor/internal/api"
	"rumor/internal/service"
)

// ResultStream iterates one NDJSON results connection
// (GET /v1/jobs/{id}/results). It is a single connection: a transport
// drop surfaces as an error from Next. For transparent reconnection
// use Client.StreamResults, which wraps ResultStream in cursor-based
// resume.
type ResultStream struct {
	body io.ReadCloser
	sc   *bufio.Scanner
	raw  []byte
	done bool
}

func newResultStream(body io.ReadCloser) *ResultStream {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	return &ResultStream{body: body, sc: sc}
}

// terminalStreamError marks a decode-side stream failure: the row
// itself is unreadable (larger than the scanner cap, malformed JSON),
// so reconnecting replays the same bytes and deterministically
// re-fails. StreamResults returns it immediately instead of burning
// the retry budget on a doomed reconnect loop.
type terminalStreamError struct{ err error }

func (e terminalStreamError) Error() string { return e.err.Error() }
func (e terminalStreamError) Unwrap() error { return e.err }

// Next returns the next cell result. It returns io.EOF when the server
// completed the stream, an *api.Error when the stream ended with a
// terminal error row (job failed or cancelled), a terminalStreamError
// when the payload itself is undecodable (resuming cannot help), and
// other errors on transport failures (the caller may resume from the
// last index).
func (s *ResultStream) Next() (*service.CellResult, error) {
	if s.done {
		return nil, io.EOF
	}
	if !s.sc.Scan() {
		s.done = true
		if err := s.sc.Err(); err != nil {
			if errors.Is(err, bufio.ErrTooLong) {
				return nil, terminalStreamError{fmt.Errorf("client: result row exceeds the scanner cap: %w", err)}
			}
			return nil, err
		}
		return nil, io.EOF
	}
	s.raw = append(s.raw[:0], s.sc.Bytes()...)
	// One decode discriminates the row: a result row never carries an
	// "error" key, an error row nothing else we care about.
	var row struct {
		Error *api.Error `json:"error"`
		service.CellResult
	}
	if err := json.Unmarshal(s.raw, &row); err != nil {
		s.done = true
		// bufio.Scanner flushes the buffered tail of an errored
		// connection as a final token, so an undecodable row can be a
		// transport truncation rather than server garbage. Probe the
		// scanner: a pending read error means the connection died
		// mid-row — surface that (retryable, the resume cursor discards
		// the partial tail); a clean end means the row itself is
		// malformed, which no reconnect can fix.
		if !s.sc.Scan() {
			if terr := s.sc.Err(); terr != nil && !errors.Is(terr, bufio.ErrTooLong) {
				return nil, terr
			}
		}
		return nil, terminalStreamError{fmt.Errorf("client: decoding result row: %w", err)}
	}
	if row.Error != nil {
		s.done = true
		return nil, row.Error
	}
	return &row.CellResult, nil
}

// Raw returns the raw NDJSON bytes of the last row Next returned
// (valid until the next call) — the unit of the API's byte-determinism
// guarantee.
func (s *ResultStream) Raw() []byte { return s.raw }

// Close releases the connection.
func (s *ResultStream) Close() error { return s.body.Close() }

// Results opens one results stream for the job, resuming after cell
// index after (-1 streams from the beginning). The server replays
// already-completed cells from the job's results — reconnecting never
// recomputes.
func (c *Client) Results(ctx context.Context, id string, after int) (*ResultStream, error) {
	path := "/v1/jobs/" + url.PathEscape(id) + "/results"
	if after >= 0 {
		path += fmt.Sprintf("?after=%d", after)
	}
	resp, err := c.do(ctx, http.MethodGet, path, nil, nil)
	if err != nil {
		return nil, err
	}
	return newResultStream(resp.Body), nil
}

// callbackError marks an error returned by the caller's row callback,
// so StreamResults can tell it apart from stream failures and return
// it unwrapped instead of reconnecting.
type callbackError struct{ err error }

func (e callbackError) Error() string { return e.err.Error() }

// StreamResults streams the job's results from cell index after+1 to
// completion, invoking fn for every row in canonical order. Dropped
// connections are transparently reconnected with a cursor at the last
// delivered row, so rows are delivered exactly once and nothing is
// recomputed; reconnect attempts are bounded by the client's retry
// budget (consecutive failures with no progress). Terminal error rows
// (job failed/cancelled) return as *api.Error, and decode-side
// failures (a row over the scanner cap, malformed JSON) return
// immediately without reconnecting — replaying the same bytes cannot
// succeed.
func (c *Client) StreamResults(ctx context.Context, id string, after int, fn func(*service.CellResult) error) error {
	cursor := after
	failures := 0
	for {
		stream, err := c.Results(ctx, id, cursor)
		if err != nil {
			return err
		}
		err = func() error {
			defer stream.Close()
			for {
				res, err := stream.Next()
				if err != nil {
					return err
				}
				cursor = res.Index
				failures = 0
				if err := fn(res); err != nil {
					return callbackError{err}
				}
			}
		}()
		var cb callbackError
		var apiErr *api.Error
		var term terminalStreamError
		switch {
		case errors.Is(err, io.EOF):
			return nil
		case errors.As(err, &cb):
			return cb.err
		case errors.As(err, &apiErr):
			return apiErr
		case errors.As(err, &term):
			// Decode-side failure: the same row re-fails on every
			// reconnect, so surface it instead of retrying.
			return term.err
		case ctx.Err() != nil:
			return ctx.Err()
		default:
			// Transport drop mid-stream: reconnect just past the last
			// delivered row.
			failures++
			if failures > c.retries {
				return fmt.Errorf("client: results stream for %s dropped %d times: %w", id, failures, err)
			}
			if err := sleep(ctx, c.wait(failures-1)); err != nil {
				return err
			}
		}
	}
}

// CellsIdempotencyKey is the Idempotency-Key RunCells submits an
// explicit cell list under: a deterministic digest of the cells'
// canonical hashes, so any client (re)running the same cells binds to
// the same server-side job. Exported so tests and future peers can
// address that job without duplicating the derivation.
func CellsIdempotencyKey(cells []service.CellSpec) string {
	return "sdk-cells-" + service.JobSpec{CellList: cells}.Hash()
}

// RunCells implements service.CellRunner against the server: it
// submits the cells as one explicit-cell job — idempotently, keyed by
// CellsIdempotencyKey over the spec's canonical hash, so a retried or
// repeated call binds to the same server-side job — and streams the
// results back with transparent cursor resume. Results are indexed
// like the input, and are byte-identical to what an in-process
// Executor computes for the same cells.
func (c *Client) RunCells(ctx context.Context, cells []service.CellSpec) ([]*service.CellResult, error) {
	if len(cells) == 0 {
		return nil, fmt.Errorf("client: no cells")
	}
	spec := service.JobSpec{CellList: cells}
	st, err := c.SubmitJob(ctx, spec, WithIdempotencyKey(CellsIdempotencyKey(cells)))
	if err != nil {
		return nil, fmt.Errorf("client: submitting %d cells: %w", len(cells), err)
	}
	results := make([]*service.CellResult, len(cells))
	err = c.StreamResults(ctx, st.ID, -1, func(res *service.CellResult) error {
		if res.Index < 0 || res.Index >= len(results) {
			return fmt.Errorf("client: result index %d out of range [0, %d)", res.Index, len(results))
		}
		results[res.Index] = res
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("client: streaming job %s: %w", st.ID, err)
	}
	for i, res := range results {
		if res == nil {
			return nil, fmt.Errorf("client: job %s stream ended without cell %d", st.ID, i)
		}
	}
	return results, nil
}

// Compile-time check: the SDK is a drop-in cell runner.
var _ service.CellRunner = (*Client)(nil)
