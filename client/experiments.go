package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"

	"rumor/internal/api"
	"rumor/internal/service"
)

// RunExperimentRequest configures a server-side experiment run (alias
// of the wire type in internal/api, so callers outside internal/ need
// only this package).
type RunExperimentRequest = api.RunExperimentRequest

// ExperimentInfo is one row of the experiment registry listing (alias
// of the wire type).
type ExperimentInfo = api.ExperimentInfo

// Experiments lists the server's experiment registry
// (GET /v1/experiments).
func (c *Client) Experiments(ctx context.Context) ([]api.ExperimentInfo, error) {
	var infos []api.ExperimentInfo
	err := c.doJSON(ctx, http.MethodGet, "/v1/experiments", nil, nil, &infos)
	return infos, err
}

// RunExperiment runs one experiment server-side
// (POST /v1/experiments/{id}), streaming its cell results to onCell
// (which may be nil to discard them) and returning the final outcome
// row the server's reducer computed. This single-shot stream is not
// cursor-resumable — the reduction happens server-side; for a
// resumable experiment run, submit the experiment's cells through
// RunCells and reduce locally, as cmd/experiments -server does.
func (c *Client) RunExperiment(ctx context.Context, id string, req api.RunExperimentRequest, onCell func(*service.CellResult) error) (*api.ExperimentOutcome, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(ctx, http.MethodPost, "/v1/experiments/"+url.PathEscape(id), nil, body)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		// Rows are discriminated by shape: an error envelope terminates
		// the stream, a verdict marks the final outcome row, everything
		// else is a cell result.
		var probe struct {
			Error   *api.Error `json:"error"`
			Verdict string     `json:"verdict"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, fmt.Errorf("client: decoding experiment row: %w", err)
		}
		switch {
		case probe.Error != nil:
			return nil, probe.Error
		case probe.Verdict != "":
			var outcome api.ExperimentOutcome
			if err := json.Unmarshal(line, &outcome); err != nil {
				return nil, fmt.Errorf("client: decoding outcome row: %w", err)
			}
			return &outcome, nil
		default:
			var res service.CellResult
			if err := json.Unmarshal(line, &res); err != nil {
				return nil, fmt.Errorf("client: decoding cell row: %w", err)
			}
			if onCell != nil {
				if err := onCell(&res); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("client: experiment %s stream ended without an outcome row", id)
}
