package client_test

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"rumor/client"
	"rumor/internal/api"
	"rumor/internal/obs"
	"rumor/internal/service"
)

// TestPromMetricsScrape drives a full instrumented daemon through the
// SDK and reads the run back out of the typed scrape: the parsed
// families must agree with what the workload did, and the raw-text
// twin must parse to the same shape.
func TestPromMetricsScrape(t *testing.T) {
	reg := obs.NewRegistry()
	observ := service.NewObservability(reg, nil)
	sched := service.NewScheduler(service.SchedulerConfig{
		Workers: 2, Results: service.NewResultCache(64), Graphs: service.NewGraphCache(8),
		Obs: observ,
	})
	ts := httptest.NewServer(service.NewServer(sched, service.WithObservability(observ)))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = sched.Shutdown(ctx)
	})
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	if _, err := c.RunCells(ctx, smallGrid().Cells()); err != nil {
		t.Fatal(err)
	}
	scrape, err := c.PromMetrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := scrape.Sum("rumor_scheduler_cells_total"); n != 8 {
		t.Errorf("scraped cells_total sum = %v, want 8", n)
	}
	if v, ok := scrape.Value("rumor_scheduler_workers", nil); !ok || v != 2 {
		t.Errorf("scraped workers = %v, %v, want 2", v, ok)
	}
	if _, ok := scrape["rumor_http_requests_total"]; !ok {
		t.Errorf("scrape missing the HTTP request family; got %v", scrape.Names())
	}

	raw, err := c.PromMetricsText(ctx)
	if err != nil {
		t.Fatal(err)
	}
	reparsed, err := obs.ParseText(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("PromMetricsText bytes are not valid exposition: %v", err)
	}
	if got, want := reparsed.Names(), scrape.Names(); len(got) != len(want) {
		t.Errorf("raw scrape has %d families, typed scrape %d", len(got), len(want))
	}
}

// TestPromMetricsWithoutObservability: a daemon running without the
// metrics registry has no /metrics route; the SDK surfaces the 404 as
// a typed *api.Error rather than a decode failure.
func TestPromMetricsWithoutObservability(t *testing.T) {
	c, _ := newService(t, service.SchedulerConfig{Workers: 1})
	_, err := c.PromMetrics(context.Background())
	var apiErr *api.Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("PromMetrics on a plain daemon = %v, want *api.Error", err)
	}
	if apiErr.HTTPStatus != 404 {
		t.Errorf("status = %d, want 404", apiErr.HTTPStatus)
	}
}
