// Package clienttest provides fault injection for exercising the SDK's
// reconnect paths: transports that cut streaming response bodies
// mid-flight, so tests can prove a client resumes from its cursor
// instead of silently dropping or re-reading rows.
package clienttest

import (
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
)

// ErrCut is the transport error a cut body surfaces after delivering
// its byte budget.
var ErrCut = errors.New("clienttest: connection cut")

// CutOnceTransport wraps a RoundTripper and truncates the body of the
// first response whose URL path contains Match, after After bytes: the
// reader then returns ErrCut, simulating a dropped connection
// mid-stream (possibly mid-row — resuming clients must discard the
// partial tail). Subsequent matching responses pass through intact, so
// one reconnect heals the stream.
type CutOnceTransport struct {
	// Base is the underlying transport; nil means
	// http.DefaultTransport.
	Base http.RoundTripper
	// Match is the URL path substring selecting the stream to cut
	// (e.g. "/results").
	Match string
	// After is how many body bytes to deliver before cutting.
	After int64

	mu   sync.Mutex
	used bool
	cuts atomic.Int64
}

// RoundTrip implements http.RoundTripper.
func (t *CutOnceTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	resp, err := base.RoundTrip(req)
	if err != nil || !strings.Contains(req.URL.Path, t.Match) {
		return resp, err
	}
	t.mu.Lock()
	cut := !t.used
	t.used = true
	t.mu.Unlock()
	if cut {
		t.cuts.Add(1)
		resp.Body = &cutBody{rc: resp.Body, remaining: t.After}
	}
	return resp, nil
}

// Cuts reports how many responses were cut (0 or 1; a test asserting a
// forced reconnect checks it is 1).
func (t *CutOnceTransport) Cuts() int64 { return t.cuts.Load() }

type cutBody struct {
	rc        io.ReadCloser
	remaining int64
}

func (b *cutBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, ErrCut
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.rc.Read(p)
	b.remaining -= int64(n)
	if err == nil && b.remaining <= 0 {
		err = ErrCut
	}
	return n, err
}

func (b *cutBody) Close() error { return b.rc.Close() }
