// Package clienttest provides fault injection for exercising the SDK's
// reconnect paths: transports that cut streaming response bodies
// mid-flight, so tests can prove a client resumes from its cursor
// instead of silently dropping or re-reading rows.
package clienttest

import (
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
)

// ErrCut is the transport error a cut body surfaces after delivering
// its byte budget.
var ErrCut = errors.New("clienttest: connection cut")

// CutOnceTransport wraps a RoundTripper and truncates the body of the
// first response whose URL path contains Match, after After bytes: the
// reader then returns ErrCut, simulating a dropped connection
// mid-stream (possibly mid-row — resuming clients must discard the
// partial tail). Subsequent matching responses pass through intact, so
// one reconnect heals the stream.
type CutOnceTransport struct {
	// Base is the underlying transport; nil means
	// http.DefaultTransport.
	Base http.RoundTripper
	// Match is the URL path substring selecting the stream to cut
	// (e.g. "/results").
	Match string
	// After is how many body bytes to deliver before cutting.
	After int64

	mu   sync.Mutex
	used bool
	cuts atomic.Int64
}

// RoundTrip implements http.RoundTripper.
func (t *CutOnceTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	resp, err := base.RoundTrip(req)
	if err != nil || !strings.Contains(req.URL.Path, t.Match) {
		return resp, err
	}
	t.mu.Lock()
	cut := !t.used
	t.used = true
	t.mu.Unlock()
	if cut {
		t.cuts.Add(1)
		resp.Body = &cutBody{rc: resp.Body, remaining: t.After}
	}
	return resp, nil
}

// Cuts reports how many responses were cut (0 or 1; a test asserting a
// forced reconnect checks it is 1).
func (t *CutOnceTransport) Cuts() int64 { return t.cuts.Load() }

type cutBody struct {
	rc        io.ReadCloser
	remaining int64
}

func (b *cutBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, ErrCut
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.rc.Read(p)
	b.remaining -= int64(n)
	if err == nil && b.remaining <= 0 {
		err = ErrCut
	}
	return n, err
}

func (b *cutBody) Close() error { return b.rc.Close() }

// ErrPeerDown is the transport error every request to a killed peer
// returns.
var ErrPeerDown = errors.New("clienttest: peer is down")

// PeerDownTransport simulates a peer daemon SIGKILLed mid-stream: the
// first response from Host whose URL path contains Match is truncated
// after After body bytes, and from that moment every request to Host —
// including the reconnects a resuming client issues — fails with
// ErrPeerDown. Unlike CutOnceTransport the peer never heals, so retry
// budgets drain and callers must fail the peer over, not resume it.
// Requests to other hosts pass through untouched, which is what a
// shard coordinator's surviving peers need.
type PeerDownTransport struct {
	// Base is the underlying transport; nil means
	// http.DefaultTransport.
	Base http.RoundTripper
	// Host is the "host:port" of the peer to kill (compare
	// url.URL.Host).
	Host string
	// Match is the URL path substring selecting the stream to cut
	// (e.g. "/results").
	Match string
	// After is how many body bytes to deliver before the kill.
	After int64

	mu     sync.Mutex
	down   bool
	denied atomic.Int64
}

// RoundTrip implements http.RoundTripper.
func (t *PeerDownTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.URL.Host != t.Host {
		return t.base().RoundTrip(req)
	}
	t.mu.Lock()
	if t.down {
		t.mu.Unlock()
		t.denied.Add(1)
		return nil, ErrPeerDown
	}
	if !strings.Contains(req.URL.Path, t.Match) {
		t.mu.Unlock()
		return t.base().RoundTrip(req)
	}
	// The matched stream is the kill point: mark the peer down before
	// releasing the lock so no concurrent request slips through, then
	// hand the caller a body that dies after its byte budget.
	t.down = true
	t.mu.Unlock()
	resp, err := t.base().RoundTrip(req)
	if err != nil {
		return resp, err
	}
	resp.Body = &cutBody{rc: resp.Body, remaining: t.After}
	return resp, nil
}

// Down reports whether the peer has been killed yet.
func (t *PeerDownTransport) Down() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.down
}

// Denied reports how many requests were refused after the kill — a
// failover test asserts it is positive (the client really did try the
// dead peer again before giving up on it).
func (t *PeerDownTransport) Denied() int64 { return t.denied.Load() }

func (t *PeerDownTransport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}
