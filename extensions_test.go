package rumor_test

import (
	"math"
	"testing"

	"rumor"
)

// Facade tests for the extension APIs: steppers, curves, crashes,
// multi-source, reference engine, spectral toolkit.

func TestStepperFacade(t *testing.T) {
	g, err := rumor.Complete(64)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := rumor.NewSyncStepper(g, 0, rumor.SyncConfig{Protocol: rumor.PushPull}, rumor.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	rounds := 0
	for ss.Step() {
		rounds++
	}
	if !ss.Finished() || ss.NumInformed() != 64 || rounds != ss.Round() {
		t.Fatalf("sync stepper: finished=%v informed=%d rounds=%d/%d",
			ss.Finished(), ss.NumInformed(), rounds, ss.Round())
	}
	as, err := rumor.NewAsyncStepper(g, 0, rumor.AsyncConfig{Protocol: rumor.PushPull}, rumor.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	for as.Step() {
	}
	if as.NumInformed() != 64 || as.Time() <= 0 {
		t.Fatalf("async stepper: informed=%d time=%v", as.NumInformed(), as.Time())
	}
}

func TestCurveFacade(t *testing.T) {
	g, err := rumor.Complete(50)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rumor.RunAsync(g, 0, rumor.AsyncConfig{Protocol: rumor.PushPull}, rumor.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	c := res.Curve()
	if got := c.FractionAt(res.Time); math.Abs(got-1) > 1e-12 {
		t.Fatalf("curve end fraction %v", got)
	}
}

func TestCrashFacade(t *testing.T) {
	g, err := rumor.Path(5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rumor.RunAsync(g, 0, rumor.AsyncConfig{
		Protocol: rumor.PushPull,
		Crashes:  []rumor.Crash{{Node: 2, Time: 0}},
	}, rumor.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.NumInformed > 2 {
		t.Fatalf("crash not respected through facade: %d informed", res.NumInformed)
	}
}

func TestMultiSourceFacade(t *testing.T) {
	g, err := rumor.Path(10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rumor.RunSync(g, 0, rumor.SyncConfig{
		Protocol:     rumor.PushPull,
		ExtraSources: []rumor.NodeID{9},
	}, rumor.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.InformedAt[9] != 0 {
		t.Fatal("extra source not at round 0 through facade")
	}
}

func TestReferenceEngineFacade(t *testing.T) {
	g, err := rumor.Cycle(16)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rumor.RunSyncReference(g, 0, rumor.SyncConfig{Protocol: rumor.PushPull}, rumor.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("reference engine incomplete on cycle")
	}
}

func TestSpectralFacade(t *testing.T) {
	g, err := rumor.Hypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	gap, err := rumor.SpectralGapLazy(g, 1000, rumor.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gap-0.25) > 1e-6 { // Q_4: lazy gap = 1/d = 1/4
		t.Fatalf("Q_4 gap = %v, want 0.25", gap)
	}
	phi, err := rumor.ConductanceExact(g)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := rumor.CheegerBounds(gap)
	if phi < lo-1e-9 || phi > hi+1e-9 {
		t.Fatalf("Φ=%v outside Cheeger range [%v, %v]", phi, lo, hi)
	}
	// Q_4's exact conductance: bisect along one dimension: cut 16 edges?
	// n=16, d=4: cutting one dimension: 8 edges cross, vol(S) = 8*4 = 32:
	// Φ = 8/32 = 0.25.
	if math.Abs(phi-0.25) > 1e-12 {
		t.Fatalf("Q_4 conductance = %v, want 0.25", phi)
	}
}

func TestSweepFacade(t *testing.T) {
	fam, err := rumor.FamilyByName("complete")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := rumor.Sweep{
		Families: []rumor.Family{fam},
		Sizes:    []int{24, 48},
		Protocol: rumor.PushPull,
		Sync:     true,
		Async:    true,
		Trials:   8,
		Seed:     5,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Larger complete graphs take (weakly) more rounds in q99 terms.
	if rows[0].SyncSummary().Mean <= 0 || rows[1].AsyncSummary().Mean <= 0 {
		t.Fatal("degenerate sweep summaries")
	}
}
