package rumor_test

// One benchmark per experiment (E1–E15; see DESIGN.md §5 and
// EXPERIMENTS.md), each regenerating that experiment's measurement in
// quick mode, plus engine micro-benchmarks. Run with:
//
//	go test -bench=. -benchmem
//
// The experiment benches report b.N runs of the full (quick) experiment;
// the micro-benches isolate per-step/per-round engine cost.

import (
	"io"
	"testing"

	"rumor"
	"rumor/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		o, err := e.Run(experiments.Config{Quick: true, Seed: uint64(i + 1), Out: io.Discard})
		if err != nil {
			b.Fatal(err)
		}
		if o.Verdict == experiments.Failed {
			b.Fatalf("%s FAILED: %s", id, o.Summary)
		}
	}
}

func BenchmarkE01Star(b *testing.B)                { benchExperiment(b, "E1") }
func BenchmarkE02Theorem1(b *testing.B)            { benchExperiment(b, "E2") }
func BenchmarkE03Theorem2(b *testing.B)            { benchExperiment(b, "E3") }
func BenchmarkE04Corollary3(b *testing.B)          { benchExperiment(b, "E4") }
func BenchmarkE05PushVsPP(b *testing.B)            { benchExperiment(b, "E5") }
func BenchmarkE06SyncPushVsAsyncPush(b *testing.B) { benchExperiment(b, "E6") }
func BenchmarkE07CouplingLadder(b *testing.B)      { benchExperiment(b, "E7") }
func BenchmarkE08BlockCoupling(b *testing.B)       { benchExperiment(b, "E8") }
func BenchmarkE09SocialNetworks(b *testing.B)      { benchExperiment(b, "E9") }
func BenchmarkE10AsyncViews(b *testing.B)          { benchExperiment(b, "E10") }
func BenchmarkE11DiamondChain(b *testing.B)        { benchExperiment(b, "E11") }
func BenchmarkE12Lemma8(b *testing.B)              { benchExperiment(b, "E12") }
func BenchmarkE13EngineThroughput(b *testing.B)    { benchExperiment(b, "E13") }
func BenchmarkE14ExpansionBounds(b *testing.B)     { benchExperiment(b, "E14") }
func BenchmarkE15Quasirandom(b *testing.B)         { benchExperiment(b, "E15") }

// Engine micro-benchmarks.

func benchGraph(b *testing.B, build func() (*rumor.Graph, error)) *rumor.Graph {
	b.Helper()
	g, err := build()
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkSyncPushPullHypercube12(b *testing.B) {
	g := benchGraph(b, func() (*rumor.Graph, error) { return rumor.Hypercube(12) })
	rng := rumor.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rumor.RunSync(g, 0, rumor.SyncConfig{Protocol: rumor.PushPull}, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAsyncGlobalClockHypercube12(b *testing.B) {
	g := benchGraph(b, func() (*rumor.Graph, error) { return rumor.Hypercube(12) })
	rng := rumor.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rumor.RunAsync(g, 0, rumor.AsyncConfig{Protocol: rumor.PushPull}, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAsyncPerNodeHypercube12(b *testing.B) {
	g := benchGraph(b, func() (*rumor.Graph, error) { return rumor.Hypercube(12) })
	rng := rumor.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := rumor.AsyncConfig{Protocol: rumor.PushPull, View: rumor.PerNodeClocks}
		if _, err := rumor.RunAsync(g, 0, cfg, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAsyncPerEdgeHypercube10(b *testing.B) {
	g := benchGraph(b, func() (*rumor.Graph, error) { return rumor.Hypercube(10) })
	rng := rumor.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := rumor.AsyncConfig{Protocol: rumor.PushPull, View: rumor.PerEdgeClocks}
		if _, err := rumor.RunAsync(g, 0, cfg, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPPXHypercube10(b *testing.B) {
	g := benchGraph(b, func() (*rumor.Graph, error) { return rumor.Hypercube(10) })
	rng := rumor.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rumor.RunPPVariant(g, 0, rumor.PPX, rumor.SyncConfig{}, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUpperCouplingHypercube8(b *testing.B) {
	g := benchGraph(b, func() (*rumor.Graph, error) { return rumor.Hypercube(8) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rumor.RunUpperCoupling(g, 0, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLowerCouplingHypercube8(b *testing.B) {
	g := benchGraph(b, func() (*rumor.Graph, error) { return rumor.Hypercube(8) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rumor.RunLowerCoupling(g, 0, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGraphGenGNP(b *testing.B) {
	rng := rumor.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rumor.GNP(10000, 0.001, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGraphGenPowerLaw(b *testing.B) {
	rng := rumor.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rumor.ChungLuPowerLaw(10000, 2.5, 3, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: the literal-semantics reference engine vs the optimized
// engine (the boundary-scan optimization DESIGN.md calls out). Pull-only
// on a path is the extreme case: the active boundary is O(1) nodes per
// round while the reference engine scans all n every round.
func BenchmarkSyncReferencePullPath(b *testing.B) {
	g := benchGraph(b, func() (*rumor.Graph, error) { return rumor.Path(512) })
	rng := rumor.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rumor.RunSyncReference(g, 0, rumor.SyncConfig{Protocol: rumor.Pull}, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSyncOptimizedPullPath(b *testing.B) {
	g := benchGraph(b, func() (*rumor.Graph, error) { return rumor.Path(512) })
	rng := rumor.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rumor.RunSync(g, 0, rumor.SyncConfig{Protocol: rumor.Pull}, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpectralGapHypercube10(b *testing.B) {
	g := benchGraph(b, func() (*rumor.Graph, error) { return rumor.Hypercube(10) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rumor.SpectralGapLazy(g, 500, rumor.NewRNG(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: lossy transmission overhead (extension feature).
func BenchmarkSyncLossyHypercube10(b *testing.B) {
	g := benchGraph(b, func() (*rumor.Graph, error) { return rumor.Hypercube(10) })
	rng := rumor.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := rumor.SyncConfig{Protocol: rumor.PushPull, TransmitProb: 0.5}
		if _, err := rumor.RunSync(g, 0, cfg, rng); err != nil {
			b.Fatal(err)
		}
	}
}
