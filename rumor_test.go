package rumor_test

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"rumor"
)

// The facade tests exercise the library exactly as an external user
// would: through the public API only.

func TestQuickstartFlow(t *testing.T) {
	g, err := rumor.Hypercube(7)
	if err != nil {
		t.Fatal(err)
	}
	rng := rumor.NewRNG(42)
	sync, err := rumor.RunSync(g, 0, rumor.SyncConfig{Protocol: rumor.PushPull}, rng)
	if err != nil {
		t.Fatal(err)
	}
	async, err := rumor.RunAsync(g, 0, rumor.AsyncConfig{Protocol: rumor.PushPull}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !sync.Complete || !async.Complete {
		t.Fatal("spreading incomplete on connected hypercube")
	}
	if sync.Rounds < 7 {
		t.Fatalf("sync rounds %d below diameter", sync.Rounds)
	}
}

func TestBuilderFacade(t *testing.T) {
	g, err := rumor.NewBuilder(3).AddEdge(0, 1).AddEdge(1, 2).Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatal("builder facade broken")
	}
	if !rumor.IsConnected(g) {
		t.Fatal("connectivity facade broken")
	}
}

func TestMeasureAndStatsFacade(t *testing.T) {
	g, err := rumor.Complete(64)
	if err != nil {
		t.Fatal(err)
	}
	m, err := rumor.MeasureSync(g, 0, rumor.PushPull, 40, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := rumor.Summarize(m.Times)
	if s.N != 40 || s.Mean <= 0 {
		t.Fatalf("summary %+v", s)
	}
	q := rumor.Quantile(m.Times, 0.9)
	if q < s.Median {
		t.Fatal("q90 below median")
	}
	if hp := rumor.HighProbabilityTime(m.Times, 64); hp < q {
		t.Fatal("T_{1/n} proxy below q90")
	}
}

func TestTraceFacade(t *testing.T) {
	g, err := rumor.Star(32)
	if err != nil {
		t.Fatal(err)
	}
	rec := rumor.NewRecorder()
	if _, err := rumor.RunSync(g, 1, rumor.SyncConfig{Protocol: rumor.PushPull, Observer: rec}, rumor.NewRNG(1)); err != nil {
		t.Fatal(err)
	}
	tr, err := rec.Build(g.NumNodes())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Source() != 1 {
		t.Fatalf("trace source %d", tr.Source())
	}
	// The center (node 0) must lie on every leaf's rumor path.
	path := tr.Path(5)
	found := false
	for _, v := range path {
		if v == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("center missing from path %v", path)
	}
}

func TestCouplingFacade(t *testing.T) {
	g, err := rumor.Complete(32)
	if err != nil {
		t.Fatal(err)
	}
	up, err := rumor.RunUpperCoupling(g, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if up.PPXTotal < 1 || up.AsyncTotal <= 0 {
		t.Fatalf("upper coupling degenerate: %+v", up)
	}
	low, err := rumor.RunLowerCoupling(g, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !low.SubsetInvariantHeld || !low.SequentialParallelAgreed {
		t.Fatal("lower coupling invariants violated")
	}
}

func TestSpreadingTimeHelpers(t *testing.T) {
	g, err := rumor.Complete(32)
	if err != nil {
		t.Fatal(err)
	}
	rounds, err := rumor.SyncSpreadingTime(g, 0, rumor.PushPull, rumor.NewRNG(3))
	if err != nil || rounds < 1 {
		t.Fatalf("sync helper: %d, %v", rounds, err)
	}
	tm, err := rumor.AsyncSpreadingTime(g, 0, rumor.PushPull, rumor.NewRNG(3))
	if err != nil || tm <= 0 {
		t.Fatalf("async helper: %v, %v", tm, err)
	}
}

func TestPPVariantFacade(t *testing.T) {
	g, err := rumor.Hypercube(5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rumor.RunPPVariant(g, 0, rumor.PPX, rumor.SyncConfig{}, rumor.NewRNG(4))
	if err != nil || !res.Complete {
		t.Fatalf("ppx facade: %v", err)
	}
	m, err := rumor.MeasurePPVariant(g, 0, rumor.PPY, 10, 1, 0)
	if err != nil || len(m.Times) != 10 {
		t.Fatalf("ppy measure facade: %v", err)
	}
}

func TestGraphFamiliesFacade(t *testing.T) {
	fams := rumor.StandardFamilies()
	if len(fams) < 10 {
		t.Fatalf("only %d standard families", len(fams))
	}
	f, err := rumor.FamilyByName("diamond")
	if err != nil {
		t.Fatal(err)
	}
	g, err := f.Build(500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rumor.IsConnected(g) {
		t.Fatal("diamond family instance disconnected")
	}
}

func TestEdgeListFacade(t *testing.T) {
	g, err := rumor.Cycle(10)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rumor.WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := rumor.ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != 10 {
		t.Fatal("edge list round trip lost edges")
	}
}

func TestKSAndFitFacade(t *testing.T) {
	rng := rumor.NewRNG(9)
	xs := make([]float64, 500)
	ys := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.Exp(1)
		ys[i] = rng.Exp(1)
	}
	if ks := rumor.KolmogorovSmirnov(xs, ys); ks.PValue < 0.001 {
		t.Fatalf("KS rejected identical: %v", ks)
	}
	fit, err := rumor.FitPowerLaw([]float64{1, 2, 4}, []float64{2, 4, 8})
	if err != nil || math.Abs(fit.Alpha-1) > 1e-9 {
		t.Fatalf("fit facade: %+v, %v", fit, err)
	}
}

func ExampleRunSync() {
	g, _ := rumor.Star(8)
	res, _ := rumor.RunSync(g, 0, rumor.SyncConfig{Protocol: rumor.Pull}, rumor.NewRNG(1))
	// From the star center, every leaf pulls in the first round.
	fmt.Println(res.Rounds, res.Complete)
	// Output: 1 true
}
