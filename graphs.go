package rumor

import (
	"io"

	"rumor/internal/graph"
)

// Deterministic graph families.

// Complete returns the complete graph K_n.
func Complete(n int) (*Graph, error) { return graph.Complete(n) }

// Star returns the n-vertex star (node 0 is the center).
func Star(n int) (*Graph, error) { return graph.Star(n) }

// Path returns the path graph on n vertices.
func Path(n int) (*Graph, error) { return graph.Path(n) }

// Cycle returns the cycle graph on n vertices.
func Cycle(n int) (*Graph, error) { return graph.Cycle(n) }

// Hypercube returns the dim-dimensional hypercube (2^dim vertices).
func Hypercube(dim int) (*Graph, error) { return graph.Hypercube(dim) }

// Grid returns the rows x cols grid; torus wraps both dimensions.
func Grid(rows, cols int, torus bool) (*Graph, error) { return graph.Grid(rows, cols, torus) }

// CompleteKAryTree returns a complete k-ary tree with n vertices.
func CompleteKAryTree(n, k int) (*Graph, error) { return graph.CompleteKAryTree(n, k) }

// Barbell returns two k-cliques joined by a path of pathLen vertices.
func Barbell(k, pathLen int) (*Graph, error) { return graph.Barbell(k, pathLen) }

// Lollipop returns a k-clique with a pathLen-vertex tail.
func Lollipop(k, pathLen int) (*Graph, error) { return graph.Lollipop(k, pathLen) }

// DoubleStar returns two joined stars with leafs leaves each.
func DoubleStar(leafs int) (*Graph, error) { return graph.DoubleStar(leafs) }

// DiamondChain returns k diamonds in series with m parallel length-2
// paths each — the adversarial family with the extremal sync/async gap.
func DiamondChain(k, m int) (*Graph, error) { return graph.DiamondChain(k, m) }

// DiamondChainForSize returns the maximal-gap parameterization
// (k ≈ n^{1/3}, m ≈ n^{2/3}) at approximately n vertices.
func DiamondChainForSize(n int) (*Graph, error) { return graph.DiamondChainForSize(n) }

// Random graph families (deterministic given the RNG state).

// GNP returns an Erdős–Rényi G(n, p) graph.
func GNP(n int, p float64, rng *RNG) (*Graph, error) { return graph.GNP(n, p, rng) }

// GNPConnected retries G(n, p) until connected (up to maxAttempts).
func GNPConnected(n int, p float64, rng *RNG, maxAttempts int) (*Graph, error) {
	return graph.GNPConnected(n, p, rng, maxAttempts)
}

// RandomRegular returns a random d-regular simple graph.
func RandomRegular(n, d int, rng *RNG) (*Graph, error) { return graph.RandomRegular(n, d, rng) }

// WattsStrogatz returns a small-world graph (ring lattice + rewiring).
func WattsStrogatz(n, k int, beta float64, rng *RNG) (*Graph, error) {
	return graph.WattsStrogatz(n, k, beta, rng)
}

// ChungLu returns a Chung–Lu random graph with the given expected-degree
// weights.
func ChungLu(weights []float64, rng *RNG) (*Graph, error) { return graph.ChungLu(weights, rng) }

// ChungLuPowerLaw returns a Chung–Lu graph with power-law expected
// degrees (the paper's social-network model).
func ChungLuPowerLaw(n int, beta, minDeg float64, rng *RNG) (*Graph, error) {
	return graph.ChungLuPowerLaw(n, beta, minDeg, rng)
}

// PreferentialAttachment returns a Barabási–Albert graph with m edges
// per arriving node.
func PreferentialAttachment(n, m int, rng *RNG) (*Graph, error) {
	return graph.PreferentialAttachment(n, m, rng)
}

// Graph analysis helpers.

// BFS returns hop distances from src (-1 when unreachable).
func BFS(g *Graph, src NodeID) []int32 { return graph.BFS(g, src) }

// IsConnected reports whether g is connected.
func IsConnected(g *Graph) bool { return graph.IsConnected(g) }

// Diameter returns the exact diameter (O(n·m); -1 when disconnected).
func Diameter(g *Graph) int32 { return graph.Diameter(g) }

// LargestComponent extracts the largest connected component.
func LargestComponent(g *Graph) (*Graph, []NodeID, error) { return graph.LargestComponent(g) }

// WriteEdgeList writes g as a text edge list.
func WriteEdgeList(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// ReadEdgeList parses the WriteEdgeList format.
func ReadEdgeList(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }
