package rumor

import (
	"rumor/internal/harness"
	"rumor/internal/stats"
)

// Measurement and harness types, re-exported for library users.
type (
	// Runner executes independent trials concurrently and
	// deterministically.
	Runner = harness.Runner
	// Measurement is a sample of spreading times.
	Measurement = harness.Measurement
	// Family is a named, size-parameterized graph family.
	Family = harness.Family
	// Sweep measures spreading times across a (families × sizes) grid.
	Sweep = harness.Sweep
	// SweepRow is one (family, size) sweep measurement.
	SweepRow = harness.SweepRow
	// Summary holds descriptive statistics of a sample.
	Summary = stats.Summary
	// KSResult reports a two-sample Kolmogorov–Smirnov test.
	KSResult = stats.KSResult
	// PowerLawFit is a least-squares fit of y = C·x^α.
	PowerLawFit = stats.PowerLawFit
)

// MeasureSync samples the synchronous spreading time over trials runs.
func MeasureSync(g *Graph, src NodeID, p Protocol, trials int, seed uint64, workers int) (*Measurement, error) {
	return harness.MeasureSync(g, src, p, trials, seed, workers)
}

// MeasureAsync samples the asynchronous spreading time over trials runs.
func MeasureAsync(g *Graph, src NodeID, p Protocol, trials int, seed uint64, workers int) (*Measurement, error) {
	return harness.MeasureAsync(g, src, p, trials, seed, workers)
}

// MeasureAsyncView is MeasureAsync with an explicit process view.
func MeasureAsyncView(g *Graph, src NodeID, p Protocol, view AsyncView, trials int, seed uint64, workers int) (*Measurement, error) {
	return harness.MeasureAsyncView(g, src, p, view, trials, seed, workers)
}

// MeasurePPVariant samples the ppx/ppy spreading time over trials runs.
func MeasurePPVariant(g *Graph, src NodeID, v PPVariant, trials int, seed uint64, workers int) (*Measurement, error) {
	return harness.MeasurePPVariant(g, src, v, trials, seed, workers)
}

// StandardFamilies returns the graph families used by the experiments.
func StandardFamilies() []Family { return harness.StandardFamilies() }

// FamilyByName returns the standard family with the given name.
func FamilyByName(name string) (Family, error) { return harness.FamilyByName(name) }

// Summarize computes descriptive statistics of a sample.
func Summarize(xs []float64) Summary { return stats.Summarize(xs) }

// Quantile returns the empirical q-quantile (nearest-rank), matching the
// paper's T_q = min{t : P[T <= t] >= q} definition.
func Quantile(xs []float64, q float64) float64 { return stats.Quantile(xs, q) }

// HighProbabilityTime is the empirical proxy for the paper's T_{1/n}.
func HighProbabilityTime(sample []float64, graphN int) float64 {
	return stats.HighProbabilityTime(sample, graphN)
}

// KolmogorovSmirnov runs a two-sample KS test.
func KolmogorovSmirnov(xs, ys []float64) KSResult { return stats.KolmogorovSmirnov(xs, ys) }

// FitPowerLaw fits y = C·x^α by least squares on log-log scale.
func FitPowerLaw(xs, ys []float64) (PowerLawFit, error) { return stats.FitPowerLaw(xs, ys) }
